/**
 * @file
 * The pluggable memory-backend interface.
 *
 * SpArch's results are bandwidth-dominated, so the memory system is a
 * first-class axis of the design space: the paper evaluates a 16-channel
 * HBM stack (Table I), compares against DDR4-class baselines, and any
 * DSE sweep worth running wants an infinite-bandwidth point to separate
 * memory-bound from compute-bound behavior. MemoryModel is the abstract
 * contract every backend implements; per-stream byte accounting (the
 * Fig. 10 traffic classes every bench reports) lives here in the base
 * class so all backends count bytes identically, and only *timing*
 * differs per backend:
 *
 *   - HbmBackend      channel-occupancy HBM model (the paper's design)
 *   - Ddr4Backend     banked DDR4 with row-buffer hit/miss latency
 *   - Lpddr4Backend   low-power DDR4 point for energy sweeps
 *   - IdealBackend    infinite bandwidth, isolates compute-bound runs
 *
 * All backend parameter blocks plus the MemoryConfig selector are
 * defined here so config-consuming layers (SpArchConfig, the CLI, the
 * result cache) depend on one header.
 */

#ifndef SPARCH_MEM_MEMORY_MODEL_HH
#define SPARCH_MEM_MEMORY_MODEL_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace sparch
{

/** Traffic classes, matching the streams in Fig. 10. */
enum class DramStream : unsigned
{
    MatA = 0,        //!< left-matrix CSR stream (column fetcher)
    MatB,            //!< right-matrix rows (row prefetcher)
    PartialRead,     //!< partially merged results read back
    PartialWrite,    //!< partially merged results written out
    FinalWrite,      //!< final result written in CSR
    NumStreams
};

/** Printable name of a stream class. */
const char *dramStreamName(DramStream s);

namespace mem
{

/** The selectable memory backends. */
enum class MemoryKind : unsigned
{
    Hbm = 0, //!< Table I: 16x64-bit HBM channels (the paper's design)
    Ddr4,    //!< banked DDR4, OuterSpace-class baseline memory
    Lpddr4,  //!< low-power mobile DRAM point for energy sweeps
    Ideal    //!< infinite bandwidth, zero queueing
};

/** Printable backend name ("hbm", "ddr4", "lpddr4", "ideal"). */
const char *memoryKindName(MemoryKind kind);

/** Configuration of the HBM stack. */
struct HbmConfig
{
    /** Number of independent channels (Table I: 16). */
    unsigned channels = 16;

    /** Bytes per channel per cycle (8 GB/s at 1 GHz = 8 B/cycle). */
    Bytes bytesPerCyclePerChannel = 8;

    /** Access latency in cycles added to every request. */
    Cycle accessLatency = 64;

    /** Address interleaving granularity in bytes. */
    Bytes interleaveBytes = 64;

    /** Peak aggregate bandwidth in bytes per cycle. */
    Bytes
    peakBytesPerCycle() const
    {
        return channels * bytesPerCyclePerChannel;
    }
};

/**
 * Configuration of a banked DRAM channel group (DDR4 / LPDDR4). The
 * distinguishing feature over the HBM model is the per-bank row buffer:
 * an access that hits the open row pays only the CAS-class latency,
 * while switching rows additionally occupies the channel for the
 * precharge + activate penalty.
 */
struct BankedDramConfig
{
    /** Independent channels. */
    unsigned channels = 2;

    /** Bytes per channel per cycle at the 1 GHz core clock. */
    Bytes bytesPerCyclePerChannel = 16;

    /** Banks per channel, each with one open row. */
    unsigned banksPerChannel = 16;

    /** Row-buffer size in bytes. */
    Bytes rowBufferBytes = 2048;

    /** Read latency on a row-buffer hit (CAS class). */
    Cycle rowHitLatency = 64;

    /** Extra channel-occupancy cycles on a row miss (tRP + tRCD). */
    Cycle rowMissPenalty = 48;

    /** Address interleaving granularity in bytes. */
    Bytes interleaveBytes = 64;

    /** Peak aggregate bandwidth in bytes per cycle. */
    Bytes
    peakBytesPerCycle() const
    {
        return channels * bytesPerCyclePerChannel;
    }
};

/**
 * Dual-channel DDR4 at the core clock: 32 B/cycle aggregate (a quarter
 * of the HBM stack) with the row-hit latency pinned to the HBM access
 * latency so DDR4 is never the lower-latency *and* lower-bandwidth
 * point — that keeps hbm <= ddr4 in cycles across sweeps.
 */
BankedDramConfig ddr4Defaults();

/**
 * Quad-channel LPDDR4: half the DDR4 bandwidth again, higher latency,
 * smaller row buffers — the low-power corner for energy sweeps.
 */
BankedDramConfig lpddr4Defaults();

/** Configuration of the ideal (infinite-bandwidth) backend. */
struct IdealConfig
{
    /** Optional fixed latency per read; 0 = pure ideal. */
    Cycle accessLatency = 0;
};

/**
 * The full memory specification of a simulation: which backend plus
 * every backend's parameter block. Inactive blocks are carried along
 * untouched so a grid sweep can flip `kind` without re-stating
 * parameters; only the active block affects simulation (and result
 * cache keys).
 */
struct MemoryConfig
{
    MemoryKind kind = MemoryKind::Hbm;

    HbmConfig hbm{};
    BankedDramConfig ddr4 = ddr4Defaults();
    BankedDramConfig lpddr4 = lpddr4Defaults();
    IdealConfig ideal{};

    /**
     * Peak aggregate bandwidth of the active backend in bytes per
     * cycle; 0 means unlimited (the ideal backend).
     */
    Bytes peakBytesPerCycle() const;

    /** Baseline read latency of the active backend in cycles. */
    Cycle accessLatency() const;
};

/**
 * Abstract DRAM timing + accounting model.
 *
 * Byte accounting is shared: read() and write() tally per-stream and
 * read/write totals in the base class, then delegate the completion
 * time to the backend's timeAccess(). utilization() is achieved bytes
 * over peak deliverable bytes, defined as 0 when either the elapsed
 * cycles or the peak is zero (the ideal backend has no finite peak),
 * so it never divides by zero.
 */
class MemoryModel
{
  public:
    virtual ~MemoryModel() = default;

    /**
     * Issue a read of `bytes` at `addr` at time `now`.
     * @return cycle at which the data is available on chip.
     */
    Cycle read(DramStream stream, Bytes addr, Bytes bytes, Cycle now);

    /**
     * Issue a write of `bytes` at `addr` at time `now`.
     * @return cycle at which the write has drained.
     */
    Cycle write(DramStream stream, Bytes addr, Bytes bytes, Cycle now);

    /** Total bytes moved on behalf of one stream. */
    Bytes streamBytes(DramStream stream) const;

    /** Total bytes moved across all streams. */
    Bytes totalBytes() const { return total_read_ + total_write_; }

    /** Total read bytes across all streams. */
    Bytes totalReadBytes() const { return total_read_; }

    /** Total write bytes across all streams. */
    Bytes totalWriteBytes() const { return total_write_; }

    /**
     * Achieved bandwidth utilization over [0, end_cycle]: bytes moved
     * divided by peak bytes deliverable; 0 when end_cycle or the peak
     * is zero.
     */
    double utilization(Cycle end_cycle) const;

    /**
     * Peak aggregate bandwidth in bytes per cycle; 0 means unlimited
     * (the ideal backend).
     */
    virtual Bytes peakBytesPerCycle() const = 0;

    /** Which backend this is. */
    virtual MemoryKind kind() const = 0;

    /** Reset timing state and byte counters. */
    void reset();

    /** Dump per-stream traffic (plus backend extras) into a StatSet. */
    void recordStats(StatSet &stats) const;

  protected:
    /**
     * Backend timing: when does an access of `bytes` at `addr` issued
     * at `now` complete? Called only for bytes > 0, after accounting.
     */
    virtual Cycle timeAccess(Bytes addr, Bytes bytes, Cycle now,
                             bool is_write) = 0;

    /** Clear backend timing state (channel occupancy, open rows). */
    virtual void resetTiming() = 0;

    /** Backend-specific stats (e.g. row-buffer hits); default none. */
    virtual void recordTimingStats(StatSet &stats) const;

  private:
    std::array<Bytes, static_cast<std::size_t>(DramStream::NumStreams)>
        stream_bytes_{};
    Bytes total_read_ = 0;
    Bytes total_write_ = 0;
};

/** Instantiate the backend `config.kind` selects. */
std::unique_ptr<MemoryModel> createMemoryModel(const MemoryConfig &config);

} // namespace mem
} // namespace sparch

#endif // SPARCH_MEM_MEMORY_MODEL_HH
