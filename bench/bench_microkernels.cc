/**
 * @file
 * Google-benchmark microbenchmarks of the hardware building blocks:
 * comparator-array merge steps (flat and boundary-tile), the
 * hierarchical merger, the zero eliminator, the merge tree, and the
 * reference SpGEMM kernels. These measure *simulator* throughput
 * (how fast the model runs on the host), useful when sizing
 * experiments.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "core/sparch_simulator.hh"
#include "hw/comparator_array.hh"
#include "hw/hierarchical_merger.hh"
#include "hw/merge_tree.hh"
#include "hw/zero_eliminator.hh"
#include "matrix/generators.hh"
#include "matrix/reference_spgemm.hh"

namespace
{

using namespace sparch;

std::vector<StreamElement>
sortedElements(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<StreamElement> out;
    Coord c = 0;
    for (std::size_t i = 0; i < n; ++i) {
        c += 1 + rng.nextBounded(4);
        out.push_back({c, rng.nextDouble()});
    }
    return out;
}

void
BM_ComparatorArrayMergeStep(benchmark::State &state)
{
    const auto width = static_cast<std::size_t>(state.range(0));
    hw::ComparatorArray array(width);
    const auto a = sortedElements(width, 1);
    const auto b = sortedElements(width, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(array.mergeStep(a, b));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(width));
}
BENCHMARK(BM_ComparatorArrayMergeStep)->Arg(4)->Arg(16);

void
BM_BoundaryTileMergeStep(benchmark::State &state)
{
    const auto width = static_cast<std::size_t>(state.range(0));
    hw::ComparatorArray array(width);
    const auto a = sortedElements(width, 1);
    const auto b = sortedElements(width, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(array.mergeStepBoundary(a, b));
}
BENCHMARK(BM_BoundaryTileMergeStep)->Arg(4)->Arg(16);

void
BM_HierarchicalMergeStep(benchmark::State &state)
{
    hw::HierarchicalMerger merger(16, 4);
    const auto a = sortedElements(16, 1);
    const auto b = sortedElements(16, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(merger.mergeStep(a, b));
}
BENCHMARK(BM_HierarchicalMergeStep);

void
BM_ZeroEliminator(benchmark::State &state)
{
    Rng rng(3);
    std::vector<hw::ZeLane> lanes(
        static_cast<std::size_t>(state.range(0)));
    for (std::size_t i = 0; i < lanes.size(); ++i) {
        lanes[i].element = {static_cast<Coord>(i), 1.0};
        lanes[i].valid = rng.nextBool(0.5);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(hw::ZeroEliminator::eliminate(lanes));
}
BENCHMARK(BM_ZeroEliminator)->Arg(16)->Arg(64);

void
BM_MergeTree64Way(benchmark::State &state)
{
    const auto arrays_len = static_cast<std::size_t>(state.range(0));
    std::vector<std::vector<StreamElement>> arrays;
    for (unsigned i = 0; i < 64; ++i)
        arrays.push_back(sortedElements(arrays_len, i + 10));

    hw::MergeTreeConfig cfg;
    for (auto _ : state) {
        hw::MergeTree tree(cfg, "tree");
        tree.startRound(64);
        std::vector<std::size_t> cursor(64, 0);
        std::size_t drained = 0;
        while (!tree.done() || tree.rootHasData()) {
            for (unsigned i = 0; i < 64; ++i) {
                while (cursor[i] < arrays[i].size() &&
                       tree.leafFreeSpace(i) > 0)
                    tree.pushLeaf(i, arrays[i][cursor[i]++]);
                if (cursor[i] == arrays[i].size()) {
                    tree.finishLeaf(i);
                    cursor[i] = arrays[i].size() + 1;
                }
            }
            tree.clockUpdate();
            tree.clockApply();
            while (tree.rootHasPoppable()) {
                tree.popRoot();
                ++drained;
            }
        }
        benchmark::DoNotOptimize(drained);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(arrays_len) * 64);
}
BENCHMARK(BM_MergeTree64Way)->Arg(256);

void
BM_ReferenceSpgemm(benchmark::State &state)
{
    const CsrMatrix a = generateUniform(1000, 1000, 8000, 5);
    for (auto _ : state) {
        switch (state.range(0)) {
          case 0:
            benchmark::DoNotOptimize(spgemmDenseAccumulator(a, a));
            break;
          case 1:
            benchmark::DoNotOptimize(spgemmHash(a, a));
            break;
          case 2:
            benchmark::DoNotOptimize(spgemmHeap(a, a));
            break;
          default:
            benchmark::DoNotOptimize(spgemmSort(a, a));
            break;
        }
    }
}
BENCHMARK(BM_ReferenceSpgemm)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3);

void
BM_SpArchEndToEnd(benchmark::State &state)
{
    const CsrMatrix a = generateUniform(
        static_cast<Index>(state.range(0)),
        static_cast<Index>(state.range(0)),
        static_cast<std::uint64_t>(state.range(0)) * 8, 6);
    SpArchSimulator sim;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.multiply(a, a));
}
BENCHMARK(BM_SpArchEndToEnd)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
