/**
 * @file
 * Hot-path microbenchmark: single-simulation wall clock on the default
 * Fig. 12 workload (the 20-matrix suite, C = A^2, Table I config).
 *
 * Unlike the figure benches this measures the *simulator*, not the
 * simulated design: each repetition multiplies every suite matrix
 * serially on one thread through SpArchSimulator::multiply (the exact
 * path every grid point of every sweep takes) and times simulation
 * only — workload generation happens up front, outside the clock.
 *
 * Knobs: SPARCH_BENCH_NNZ (proxy scale, default 60000),
 * SPARCH_BENCH_REPS (repetitions, default 5; the median is reported),
 * SPARCH_VIRTUAL_KERNEL=1 (tick through the polymorphic SimKernel
 * conformance path instead of the static kernel).
 *
 * With SPARCH_BENCH_JSON=<path> the result is written as one
 * BENCH_simulator.json trajectory entry (schema
 * sparch-bench-hotpath-v1). `normalized_cost` divides the median by a
 * fixed-work calibration loop timed in the same process, so two
 * machines of different speed can still be compared ratio-to-ratio —
 * that is what lets CI regression-gate against a trajectory recorded
 * elsewhere (scripts/bench_trajectory.sh, .github/workflows/ci.yml
 * perf-smoke).
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/json_writer.hh"
#include "core/tick_kernel.hh"

namespace
{

using Clock = std::chrono::steady_clock;

} // namespace

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    const std::uint64_t target = targetNnz();
    const auto reps =
        static_cast<unsigned>(envU64("SPARCH_BENCH_REPS", 5));
    if (reps == 0)
        fatal("SPARCH_BENCH_REPS=0: need at least one repetition");

    // Generate the whole suite up front; the clock only ever sees
    // SpArchSimulator::multiply.
    std::vector<std::string> names;
    std::vector<CsrMatrix> matrices;
    for (const BenchmarkSpec &spec : benchmarkSuite()) {
        names.push_back(spec.name);
        matrices.push_back(suiteMatrix(spec, target));
    }

    const SpArchConfig config{};
    const SpArchSimulator sim(config);
    const char *kernel =
        tickKernel() == TickKernel::Virtual ? "virtual" : "static";

    // One untimed warmup pass: first-touch allocations (arena growth,
    // buffer pools) belong to setup, not to the steady state this
    // bench exists to track.
    Cycle total_cycles = 0;
    std::uint64_t total_nnz_out = 0;
    for (const CsrMatrix &m : matrices) {
        const SpArchResult r = sim.multiply(m, m);
        total_cycles += r.cycles;
        total_nnz_out += r.result.nnz();
    }

    std::vector<double> rep_seconds;
    for (unsigned rep = 0; rep < reps; ++rep) {
        const auto start = Clock::now();
        Cycle cycles = 0;
        for (const CsrMatrix &m : matrices)
            cycles += sim.multiply(m, m).cycles;
        rep_seconds.push_back(secondsSince(start));
        if (cycles != total_cycles) {
            fatal("hot-path bench is nondeterministic: rep ", rep,
                  " simulated ", cycles, " cycles, warmup ",
                  total_cycles);
        }
    }

    std::vector<double> sorted = rep_seconds;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double calib = calibrationSeconds();
    const double cycles_per_sec =
        static_cast<double>(total_cycles) / median;

    TablePrinter table("hot path: single-simulation wall clock, "
                       "fig12 suite (serial, 1 thread)");
    table.header({"metric", "value"});
    table.row({"kernel", kernel});
    table.row({"matrices", std::to_string(matrices.size())});
    table.row({"nnz target", std::to_string(target)});
    table.row({"repetitions", std::to_string(reps)});
    table.row({"median seconds", TablePrinter::num(median)});
    table.row({"simulated cycles", std::to_string(total_cycles)});
    table.row({"sim Mcycles/s", TablePrinter::num(cycles_per_sec / 1e6)});
    table.row({"calibration seconds", TablePrinter::num(calib)});
    table.row({"normalized cost", TablePrinter::num(median / calib)});
    table.print(std::cout);

    if (const char *path = std::getenv("SPARCH_BENCH_JSON")) {
        if (path[0] == '\0')
            fatal("SPARCH_BENCH_JSON is set but empty; give it a path");
        JsonWriter json;
        json.beginObject();
        json.field("schema", "sparch-bench-hotpath-v1");
        json.field("workload", "fig12-suite");
        json.field("kernel", kernel);
        json.field("nnz_target", target);
        json.field("reps", reps);
        json.field("median_seconds", median);
        json.key("rep_seconds");
        json.beginArray();
        for (const double s : rep_seconds)
            json.value(s);
        json.endArray();
        json.field("simulated_cycles",
                   static_cast<std::uint64_t>(total_cycles));
        json.field("sim_cycles_per_second", cycles_per_sec);
        json.field("result_nnz", total_nnz_out);
        json.field("calibration_seconds", calib);
        json.field("normalized_cost", median / calib);
        writeMachineBlock(json);
        json.endObject();
        std::ofstream out(path);
        if (!out)
            fatal("SPARCH_BENCH_JSON: cannot write '", path, "'");
        out << json.str() << "\n";
    }
    return 0;
}
