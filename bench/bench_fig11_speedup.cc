/**
 * @file
 * Figure 11: speedup of SpArch over OuterSPACE, MKL, cuSPARSE, CUSP
 * and ARM Armadillo on the 20-benchmark suite (C = A^2), with the
 * geometric mean. Paper geomeans: 4.2x / 19x / 18x / 17x / 1285x.
 *
 * The 20 cycle simulations fan out across the batch driver; the
 * analytic baseline models run afterwards on the cached proxies.
 */

#include <iostream>

#include "baselines/outerspace_model.hh"
#include "baselines/platform_models.hh"
#include "bench/bench_common.hh"
#include "driver/workload.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    const std::uint64_t target = targetNnz();
    TablePrinter table("Figure 11: speedup of SpArch over baselines "
                       "(C = A^2, proxy matrices)");
    table.header({"matrix", "SpArch GF/s", "vs OuterSPACE", "vs MKL",
                  "vs cuSPARSE", "vs CUSP", "vs Armadillo"});

    driver::BatchRunner runner = makeRunner();
    std::vector<driver::Workload> workloads;
    for (const auto &spec : benchmarkSuite()) {
        workloads.push_back(driver::suiteWorkload(spec.name, target));
        runner.add("table-I", SpArchConfig{}, workloads.back());
    }
    const std::vector<driver::BatchRecord> records =
        bench::runBatch(runner);

    std::vector<double> s_outer, s_mkl, s_cusparse, s_cusp, s_arm;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const CsrMatrix &a = workloads[i].left();
        const SpArchResult &sparch = records[i].sim;
        const BaselineResult outer = outerspaceModel(a, a);
        const BaselineResult mkl = mklProxy(a, a);
        const BaselineResult cusparse = cusparseProxy(a, a);
        const BaselineResult cusp = cuspProxy(a, a);
        const BaselineResult arm = armadilloProxy(a, a);

        auto speedup = [&](const BaselineResult &b) {
            return b.seconds / sparch.seconds;
        };
        s_outer.push_back(speedup(outer));
        s_mkl.push_back(speedup(mkl));
        s_cusparse.push_back(speedup(cusparse));
        s_cusp.push_back(speedup(cusp));
        s_arm.push_back(speedup(arm));

        table.row({workloads[i].name(),
                   TablePrinter::num(sparch.gflops),
                   TablePrinter::num(s_outer.back()),
                   TablePrinter::num(s_mkl.back()),
                   TablePrinter::num(s_cusparse.back()),
                   TablePrinter::num(s_cusp.back()),
                   TablePrinter::num(s_arm.back(), 0)});
    }
    table.row({"GeoMean (paper: 4.2/19/18/17/1285)", "",
               TablePrinter::num(geoMean(s_outer)),
               TablePrinter::num(geoMean(s_mkl)),
               TablePrinter::num(geoMean(s_cusparse)),
               TablePrinter::num(geoMean(s_cusp)),
               TablePrinter::num(geoMean(s_arm), 0)});
    table.print(std::cout);
    return 0;
}
