/**
 * @file
 * Figure 18: design space exploration on merge-tree depth. Paper:
 * 2 layers = 4.13 GFLOPS / 645 MB DRAM up to 6 layers = 10.45 GFLOPS
 * / 208 MB; a 7th layer adds nothing (204 MB) — 6 layers (64-way) is
 * the chosen design point.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    const CsrMatrix a =
        suiteMatrix(findBenchmark("web-Google"), targetNnz());

    TablePrinter t("Figure 18: merge tree depth sweep");
    t.header({"layers", "merge ways", "GFLOPS", "DRAM MB",
              "partial r/w MB", "rounds"});
    for (unsigned layers = 2; layers <= 7; ++layers) {
        SpArchConfig cfg;
        cfg.mergeTree.layers = layers;
        const SpArchResult r = runSparch(a, cfg);
        t.row({std::to_string(layers),
               std::to_string(1u << layers),
               TablePrinter::num(r.gflops),
               TablePrinter::num(
                   static_cast<double>(r.bytesTotal) / 1e6, 3),
               TablePrinter::num(
                   static_cast<double>(r.bytesPartialRead +
                                       r.bytesPartialWrite) /
                       1e6,
                   3),
               std::to_string(r.mergeRounds)});
    }
    t.print(std::cout);
    std::cout << "paper: 4.13 -> 10.45 GFLOPS and 645 -> 208 MB from "
                 "2 to 6 layers; 7 layers adds nothing\n";
    return 0;
}
