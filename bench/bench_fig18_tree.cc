/**
 * @file
 * Figure 18: design space exploration on merge-tree depth. Paper:
 * 2 layers = 4.13 GFLOPS / 645 MB DRAM up to 6 layers = 10.45 GFLOPS
 * / 208 MB; a 7th layer adds nothing (204 MB) — 6 layers (64-way) is
 * the chosen design point.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "driver/workload.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    // The depth axis fans out across the batch driver; the web-Google
    // proxy is generated once and shared by all six points.
    std::vector<std::pair<std::string, SpArchConfig>> configs;
    for (unsigned layers = 2; layers <= 7; ++layers) {
        SpArchConfig cfg;
        cfg.mergeTree.layers = layers;
        configs.emplace_back(std::to_string(layers) + "-layers", cfg);
    }
    const std::vector<driver::Workload> workloads = {
        driver::suiteWorkload("web-Google", targetNnz())};

    driver::BatchRunner runner = makeRunner();
    runner.addGrid(configs, workloads);
    const std::vector<driver::BatchRecord> records =
        bench::runBatch(runner);
    maybeWriteCsv(records);

    TablePrinter t("Figure 18: merge tree depth sweep");
    t.header({"layers", "merge ways", "GFLOPS", "DRAM MB",
              "partial r/w MB", "rounds"});
    for (std::size_t i = 0; i < records.size(); ++i) {
        const unsigned layers = 2 + static_cast<unsigned>(i);
        const SpArchResult &r = records[i].sim;
        t.row({std::to_string(layers),
               std::to_string(1u << layers),
               TablePrinter::num(r.gflops),
               TablePrinter::num(
                   static_cast<double>(r.bytesTotal) / 1e6, 3),
               TablePrinter::num(
                   static_cast<double>(r.bytesPartialRead +
                                       r.bytesPartialWrite) /
                       1e6,
                   3),
               std::to_string(r.mergeRounds)});
    }
    t.print(std::cout);
    std::cout << "paper: 4.13 -> 10.45 GFLOPS and 645 -> 208 MB from "
                 "2 to 6 layers; 7 layers adds nothing\n";
    return 0;
}
