/**
 * @file
 * Figure 12: energy saving of SpArch over OuterSPACE, MKL, cuSPARSE,
 * CUSP and ARM Armadillo on the 20-benchmark suite. Paper geomeans:
 * 6x / 164x / 435x / 307x / 62x.
 *
 * The 20 cycle simulations fan out across the batch driver; the
 * analytic baseline models run afterwards on the cached proxies.
 */

#include <iostream>

#include "baselines/outerspace_model.hh"
#include "baselines/platform_models.hh"
#include "bench/bench_common.hh"
#include "driver/workload.hh"
#include "model/energy_model.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    const std::uint64_t target = targetNnz();
    const EnergyModel model;
    TablePrinter table("Figure 12: energy saving of SpArch over "
                       "baselines (C = A^2, proxy matrices)");
    table.header({"matrix", "SpArch uJ", "vs OuterSPACE", "vs MKL",
                  "vs cuSPARSE", "vs CUSP", "vs Armadillo"});

    driver::BatchRunner runner = makeRunner();
    std::vector<driver::Workload> workloads;
    for (const auto &spec : benchmarkSuite()) {
        workloads.push_back(driver::suiteWorkload(spec.name, target));
        runner.add("table-I", SpArchConfig{}, workloads.back());
    }
    const std::vector<driver::BatchRecord> records =
        bench::runBatch(runner);
    maybeWriteCsv(records);

    std::vector<double> e_outer, e_mkl, e_cusparse, e_cusp, e_arm;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        // The workload matrix is still cached from the batch run.
        const CsrMatrix &a = workloads[i].left();
        const SpArchResult &sparch = records[i].sim;
        const double sparch_j = model.energy(sparch).total();

        auto saving = [&](const BaselineResult &b) {
            return b.energyJ / sparch_j;
        };
        e_outer.push_back(saving(outerspaceModel(a, a)));
        e_mkl.push_back(saving(mklProxy(a, a)));
        e_cusparse.push_back(saving(cusparseProxy(a, a)));
        e_cusp.push_back(saving(cuspProxy(a, a)));
        e_arm.push_back(saving(armadilloProxy(a, a)));

        table.row({workloads[i].name(),
                   TablePrinter::num(sparch_j * 1e6),
                   TablePrinter::num(e_outer.back()),
                   TablePrinter::num(e_mkl.back()),
                   TablePrinter::num(e_cusparse.back()),
                   TablePrinter::num(e_cusp.back()),
                   TablePrinter::num(e_arm.back())});
    }
    table.row({"GeoMean (paper: 6/164/435/307/62)", "",
               TablePrinter::num(geoMean(e_outer)),
               TablePrinter::num(geoMean(e_mkl)),
               TablePrinter::num(geoMean(e_cusparse)),
               TablePrinter::num(geoMean(e_cusp)),
               TablePrinter::num(geoMean(e_arm))});
    table.print(std::cout);
    return 0;
}
