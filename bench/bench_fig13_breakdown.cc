/**
 * @file
 * Figure 13: area and power breakdown per module at the Table I
 * configuration. Paper: merge tree 60.6% of area and 55.4% of power;
 * HBM 26.2% of power.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "driver/workload.hh"
#include "model/energy_model.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    const EnergyModel model;
    const AreaBreakdown a = model.area();
    const PowerBreakdown p = model.typicalPower();

    TablePrinter area_table(
        "Figure 13(a): area breakdown (TSMC 40nm)");
    area_table.header({"module", "area mm^2", "share %",
                       "paper share %"});
    auto arow = [&](const char *name, double mm2, const char *paper) {
        area_table.row({name, TablePrinter::num(mm2),
                        TablePrinter::num(100.0 * mm2 / a.total(), 1),
                        paper});
    };
    arow("Column Fetcher", a.columnFetcher, "9.3");
    arow("Row Prefetcher", a.rowPrefetcher, "20.4");
    arow("Multiplier Array", a.multiplierArray, "1.6");
    arow("Merge Tree", a.mergeTree, "60.6");
    arow("Partial Mat Writer", a.partialMatWriter, "8.2");
    area_table.row({"Total", TablePrinter::num(a.total()), "100.0",
                    "100.0 (28.49 mm^2)"});
    area_table.print(std::cout);

    std::cout << "\n";
    TablePrinter power_table("Figure 13(b): power breakdown");
    power_table.header({"module", "power W", "share %",
                        "paper share %"});
    auto prow = [&](const char *name, double w, const char *paper) {
        power_table.row({name, TablePrinter::num(w, 3),
                         TablePrinter::num(100.0 * w / p.total(), 1),
                         paper});
    };
    prow("Column Fetcher", p.columnFetcher, "1.2");
    prow("Row Prefetcher", p.rowPrefetcher, "13.5");
    prow("Multiplier Array", p.multiplierArray, "0.9");
    prow("Merge Tree", p.mergeTree, "55.4");
    prow("Partial Mat Writer", p.partialMatWriter, "2.8");
    prow("HBM", p.dram, "26.2");
    power_table.row({"Total", TablePrinter::num(p.total(), 3), "100.0",
                     "100.0"});
    power_table.print(std::cout);

    // Cross-check the static shares against a measured run: simulate
    // one representative workload through the batch driver and group
    // its event energy as in Table III. Like every other figure
    // bench, this goes through BatchRunner, so SPARCH_BENCH_CSV and
    // SPARCH_BENCH_THREADS apply here too.
    driver::BatchRunner runner = makeRunner();
    runner.add("table-I", SpArchConfig{},
               driver::suiteWorkload("web-Google", targetNnz()));
    const std::vector<driver::BatchRecord> records =
        bench::runBatch(runner);
    maybeWriteCsv(records);
    const EnergyBreakdown e = model.energy(records[0].sim);

    std::cout << "\n";
    TablePrinter energy_table(
        "Measured energy split, C = A^2 on the web-Google proxy "
        "(Table III grouping)");
    energy_table.header({"group", "uJ", "share %"});
    auto erow = [&](const char *name, double joules) {
        energy_table.row({name, TablePrinter::num(joules * 1e6),
                          TablePrinter::num(
                              100.0 * joules / e.total(), 1)});
    };
    erow("computation", e.computationJ);
    erow("SRAM", e.sramJ);
    erow("DRAM", e.dramJ);
    energy_table.row({"Total", TablePrinter::num(e.total() * 1e6),
                      "100.0"});
    energy_table.print(std::cout);
    return 0;
}
