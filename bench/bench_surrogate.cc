/**
 * @file
 * Surrogate-evaluator throughput bench: points per second through
 * dse::SurrogateEvaluator's batched SoA path — the first tier of a
 * surrogate-first sweep (sparch sweep --surrogate).
 *
 * The design target is a million points per second on one core
 * (ISSUE: million-point Fig. 17 grids pre-filtered in about a
 * second); this bench measures it directly. A synthetic SoA of
 * workload stats (SplitMix64-derived, spanning the partial-count and
 * density regimes the suite workloads produce) is scored by a panel
 * of Fig. 17-style configurations: single-threaded first — that
 * number is the gate — then fanned config-parallel across the
 * ThreadPool the way runSurrogateSweep does, to report scaling.
 *
 * Knobs: SPARCH_BENCH_SURROGATE_POINTS (stats entries, default
 * 100000), SPARCH_BENCH_REPS (repetitions, default 5; median
 * reported). With SPARCH_BENCH_JSON=<path> the result is written as
 * one BENCH_simulator.json trajectory entry (schema
 * sparch-bench-surrogate-v1); points_per_calibration normalizes by
 * the same fixed-work loop as the hot-path bench so CI can gate the
 * >= 1e6 points/s floor machine-independently.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/json_writer.hh"
#include "dse/surrogate.hh"
#include "dse/workload_stats.hh"

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Uniform double in [lo, hi) from the SplitMix64 stream. */
double
uniformIn(std::uint64_t &state, double lo, double hi)
{
    const double unit =
        static_cast<double>(splitMix64(state) >> 11) * 0x1.0p-53;
    return lo + unit * (hi - lo);
}

/**
 * Synthetic stats spanning the regimes real workloads hit: row counts
 * from hundreds to hundreds of thousands, densities that put the
 * partial count on both sides of the merge width, and condensed
 * partial counts a few times smaller than raw columns.
 */
sparch::dse::WorkloadStatsSoA
syntheticStats(std::size_t n, std::uint64_t seed)
{
    sparch::dse::WorkloadStatsSoA soa;
    std::uint64_t state = seed;
    for (std::size_t i = 0; i < n; ++i) {
        sparch::dse::WorkloadStats s;
        s.rows = uniformIn(state, 1e2, 3e5);
        s.colsA = s.rows;
        s.colsB = s.rows;
        s.nnzA = s.rows * uniformIn(state, 1.5, 40.0);
        s.nnzB = s.rows * uniformIn(state, 1.5, 40.0);
        s.multiplies = s.nnzA * uniformIn(state, 1.0, 60.0);
        const double rc = s.rows * s.colsB;
        s.outputNnz = rc * -std::expm1(-s.multiplies / rc);
        s.partialColumns = uniformIn(state, 1.0, s.colsA);
        s.partialCondensed =
            std::max(1.0, s.partialColumns / uniformIn(state, 2.0, 8.0));
        s.maxColMultiplies = s.multiplies / s.partialColumns;
        soa.push(s);
    }
    return soa;
}

/** The Fig. 17-style config panel (buffer x merger x ablations). */
std::vector<sparch::SpArchConfig>
configPanel()
{
    using sparch::SchedulerKind;
    std::vector<sparch::SpArchConfig> panel;
    for (const std::size_t lines : {256, 1024, 4096}) {
        for (const unsigned layers : {4u, 6u}) {
            sparch::SpArchConfig c;
            c.prefetchLines = lines;
            c.mergeTree.layers = layers;
            panel.push_back(c);
        }
    }
    for (const bool condensing : {false, true}) {
        for (const SchedulerKind sched :
             {SchedulerKind::Huffman, SchedulerKind::Sequential,
              SchedulerKind::Random}) {
            sparch::SpArchConfig c;
            c.matrixCondensing = condensing;
            c.scheduler = sched;
            panel.push_back(c);
        }
    }
    for (const sparch::mem::MemoryKind kind :
         {sparch::mem::MemoryKind::Ddr4,
          sparch::mem::MemoryKind::Lpddr4,
          sparch::mem::MemoryKind::Ideal}) {
        sparch::SpArchConfig c;
        c.memory.kind = kind;
        panel.push_back(c);
    }
    sparch::SpArchConfig no_prefetch;
    no_prefetch.rowPrefetcher = false;
    panel.push_back(no_prefetch);
    return panel;
}

/** Fold a batch into a checksum so no evaluation can be elided. */
double
checksum(const sparch::dse::SurrogateBatch &batch)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < batch.size(); ++i)
        acc += batch.cycles[i] + batch.bytesTotal[i];
    return acc;
}

} // namespace

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    const std::size_t points = static_cast<std::size_t>(
        envU64("SPARCH_BENCH_SURROGATE_POINTS", 100000));
    const auto reps =
        static_cast<unsigned>(envU64("SPARCH_BENCH_REPS", 5));
    if (points == 0 || reps == 0)
        fatal("surrogate bench needs positive points and reps");

    const dse::WorkloadStatsSoA soa =
        syntheticStats(points, 0x5eedf00dULL);
    const std::vector<SpArchConfig> panel = configPanel();
    const double total_points =
        static_cast<double>(points) * static_cast<double>(panel.size());

    // Evaluators are built outside the clock: one per config, exactly
    // as runSurrogateSweep amortizes them across the whole grid.
    std::vector<dse::SurrogateEvaluator> evaluators;
    evaluators.reserve(panel.size());
    for (const SpArchConfig &config : panel)
        evaluators.emplace_back(config);

    // ---- single-threaded: the gated number ----
    std::vector<double> rep_seconds;
    double reference = 0.0;
    {
        dse::SurrogateBatch batch;
        for (unsigned rep = 0; rep < reps; ++rep) {
            const auto start = Clock::now();
            double acc = 0.0;
            for (const dse::SurrogateEvaluator &eval : evaluators) {
                eval.evaluate(soa, batch);
                acc += checksum(batch);
            }
            rep_seconds.push_back(secondsSince(start));
            if (rep == 0)
                reference = acc;
            else if (acc != reference)
                fatal("surrogate bench is nondeterministic");
        }
    }
    std::vector<double> sorted = rep_seconds;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double serial_pps = total_points / median;

    // ---- config-parallel across the ThreadPool ----
    const unsigned threads = benchThreads();
    double threaded_seconds = 0.0;
    {
        driver::ThreadPool pool(threads);
        std::vector<dse::SurrogateBatch> batches(evaluators.size());
        std::vector<std::future<double>> futures;
        const auto start = Clock::now();
        for (std::size_t i = 0; i < evaluators.size(); ++i) {
            futures.push_back(pool.submit([&, i] {
                evaluators[i].evaluate(soa, batches[i]);
                return checksum(batches[i]);
            }));
        }
        double acc = 0.0;
        for (auto &f : futures)
            acc += f.get();
        threaded_seconds = secondsSince(start);
        if (acc != reference)
            fatal("threaded surrogate pass diverged from serial");
    }
    const double threaded_pps = total_points / threaded_seconds;
    const double calib = calibrationSeconds();

    TablePrinter table("surrogate evaluator: batched points/sec "
                       "(first tier of sweep --surrogate)");
    table.header({"metric", "value"});
    table.row({"stats entries", std::to_string(points)});
    table.row({"configs", std::to_string(panel.size())});
    table.row({"points / pass", TablePrinter::num(total_points)});
    table.row({"repetitions", std::to_string(reps)});
    table.row({"median seconds", TablePrinter::num(median)});
    table.row({"Mpoints/s (1 thread)",
               TablePrinter::num(serial_pps / 1e6)});
    table.row({"threads", std::to_string(threads)});
    table.row({"Mpoints/s (threaded)",
               TablePrinter::num(threaded_pps / 1e6)});
    table.row({"calibration seconds", TablePrinter::num(calib)});
    table.row({"points per calibration",
               TablePrinter::num(serial_pps * calib)});
    table.print(std::cout);

    if (serial_pps < 1e6) {
        fatal("surrogate throughput ", serial_pps,
              " points/s is below the 1e6 single-thread design "
              "target");
    }

    if (const char *path = std::getenv("SPARCH_BENCH_JSON")) {
        if (path[0] == '\0')
            fatal("SPARCH_BENCH_JSON is set but empty; give it a path");
        JsonWriter json;
        json.beginObject();
        json.field("schema", "sparch-bench-surrogate-v1");
        json.field("stats_entries",
                   static_cast<std::uint64_t>(points));
        json.field("configs",
                   static_cast<std::uint64_t>(panel.size()));
        json.field("reps", reps);
        json.field("median_seconds", median);
        json.key("rep_seconds");
        json.beginArray();
        for (const double s : rep_seconds)
            json.value(s);
        json.endArray();
        json.field("points_per_second", serial_pps);
        json.field("threads", threads);
        json.field("threaded_points_per_second", threaded_pps);
        json.field("calibration_seconds", calib);
        // Machine-normalized throughput: points scored per unit of
        // fixed calibration work, the CI gate's metric.
        json.field("points_per_calibration", serial_pps * calib);
        writeMachineBlock(json);
        json.endObject();
        std::ofstream out(path);
        if (!out)
            fatal("SPARCH_BENCH_JSON: cannot write '", path, "'");
        out << json.str() << "\n";
    }
    return 0;
}
