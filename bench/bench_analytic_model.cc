/**
 * @file
 * Section III-C analysis: the closed-form DRAM-traffic model behind
 * Fig. 16. Reproduces the re-read factor E ~ w/(w-1) ln t and the
 * traffic chain 2.5M (OuterSPACE) -> 13.9M (pipeline only) -> 2.5M
 * (+condensing) -> 1.5M (+Huffman) -> 0.88M (+prefetcher), in units
 * of the multiplication count M.
 */

#include <iostream>

#include "common/table_printer.hh"
#include "core/analytic_model.hh"

int
main()
{
    using namespace sparch;

    {
        TablePrinter t("Re-read factor E(N, w): expected DRAM "
                       "round-trips per multiplied result");
        t.header({"partial matrices N", "w=4", "w=16", "w=64",
                  "w=64 (ln approx)"});
        for (double n : {100.0, 1000.0, 10000.0, 140000.0, 1e6}) {
            t.row({TablePrinter::sci(n, 0),
                   TablePrinter::num(rereadFactorExact(n, 4)),
                   TablePrinter::num(rereadFactorExact(n, 16)),
                   TablePrinter::num(rereadFactorExact(n, 64)),
                   TablePrinter::num(rereadFactorApprox(n, 64))});
        }
        t.print(std::cout);
        std::cout << "paper: ln(140000/63) - 1 ~ 6.7 re-reads at the "
                     "average benchmark size\n\n";
    }

    {
        AnalyticInputs in; // the paper's running example
        const AnalyticTraffic traffic = analyzeTraffic(in);
        TablePrinter t("Section III-C traffic chain (elements, in "
                       "units of M = multiplications)");
        t.header({"configuration", "traffic / M", "paper"});
        const double m = in.multiplies;
        t.row({"OuterSPACE (multiply then merge)",
               TablePrinter::num(traffic.outerspace / m), "2.5"});
        t.row({"pipelined multiply+merge only",
               TablePrinter::num(traffic.pipelineOnly / m), "13.9"});
        t.row({"+ matrix condensing",
               TablePrinter::num(traffic.withCondensing / m), "2.5"});
        t.row({"+ Huffman tree scheduler",
               TablePrinter::num(traffic.withHuffman / m), "1.5"});
        t.row({"+ row prefetcher (62% hit rate)",
               TablePrinter::num(traffic.withPrefetcher / m),
               "0.88"});
        t.print(std::cout);
    }
    return 0;
}
