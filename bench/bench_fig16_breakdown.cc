/**
 * @file
 * Figure 16 (and Figure 2): dissecting the performance gain. Four
 * cumulative configurations against the OuterSPACE baseline:
 *
 *   1. pipelined multiply+merge only (no condensing, random order,
 *      no prefetcher)             — paper: 5.7x *slower* than OuterSPACE
 *   2. + matrix condensing        — paper: 8.8x speedup vs (1)
 *   3. + Huffman tree scheduler   — paper: 1.5x vs (2)
 *   4. + row prefetcher           — paper: 1.8x vs (3), 4.2x overall
 *
 * DRAM traffic shrinks alongside: 5.7x more, then 5.4x / 1.8x / 1.7x
 * less (2.8x less than OuterSPACE overall).
 */

#include <iostream>

#include "baselines/outerspace_model.hh"
#include "bench/bench_common.hh"
#include "driver/workload.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    // The pipeline-only configuration replays every partially merged
    // result through the tree log(N/64) times, which is exactly why
    // it is slow — simulate at reduced scale so the bench stays
    // interactive.
    const std::uint64_t target = targetNnz(20000);

    // A representative subset of the suite (one per family).
    const char *names[] = {"2cubes_sphere", "wiki-Vote", "scircuit",
                           "poisson3Da",    "p2p-Gnutella31",
                           "ca-CondMat"};

    SpArchConfig pipeline_only;
    pipeline_only.matrixCondensing = false;
    pipeline_only.scheduler = SchedulerKind::Random;
    pipeline_only.rowPrefetcher = false;

    SpArchConfig condensed = pipeline_only;
    condensed.matrixCondensing = true;

    SpArchConfig huffman = condensed;
    huffman.scheduler = SchedulerKind::Huffman;

    const SpArchConfig full; // + prefetcher (Table I)

    // The 4 cumulative configs x 6 matrices fan out across the batch
    // driver; each workload's proxy is generated once and shared by
    // all four configurations.
    const std::vector<std::pair<std::string, SpArchConfig>> configs = {
        {"1 pipelined multiply+merge", pipeline_only},
        {"2 + matrix condensing", condensed},
        {"3 + Huffman scheduler", huffman},
        {"4 + row prefetcher (full)", full},
    };
    std::vector<driver::Workload> workloads;
    for (const char *name : names)
        workloads.push_back(driver::suiteWorkload(name, target));

    driver::BatchRunner runner = makeRunner();
    runner.addGrid(configs, workloads);
    const std::vector<driver::BatchRecord> records =
        bench::runBatch(runner);
    maybeWriteCsv(records);

    struct Step
    {
        std::string name;
        double bytes = 0.0;
        double seconds = 0.0;
    };
    std::vector<Step> steps;
    // addGrid is configuration-major: records [c*6, c*6+6) belong to
    // configuration c.
    for (std::size_t c = 0; c < configs.size(); ++c) {
        Step s;
        s.name = configs[c].first;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const SpArchResult &r =
                records[c * workloads.size() + w].sim;
            s.seconds += r.seconds;
            s.bytes += static_cast<double>(r.bytesTotal);
        }
        steps.push_back(std::move(s));
    }

    double outer_seconds = 0.0, outer_bytes = 0.0, flops = 0.0;
    for (const driver::Workload &w : workloads) {
        // The matrix is still cached from the batch run.
        const BaselineResult outer =
            outerspaceModel(w.left(), w.left());
        outer_seconds += outer.seconds;
        outer_bytes += static_cast<double>(outer.dramBytes);
        flops += static_cast<double>(outer.flops);
    }

    TablePrinter table("Figure 16: dissecting the performance gain "
                       "(aggregate over 6 matrices)");
    table.header({"configuration", "GFLOPS", "vs OuterSPACE",
                  "DRAM MB", "DRAM vs OuterSPACE", "step speedup"});
    const double outer_gflops = flops / outer_seconds / 1e9;
    table.row({"0 OuterSPACE baseline",
               TablePrinter::num(outer_gflops),
               "1.00", TablePrinter::num(outer_bytes / 1e6), "1.00",
               "-"});
    double prev_seconds = outer_seconds;
    for (const Step &s : steps) {
        table.row({std::string(s.name),
                   TablePrinter::num(flops / s.seconds / 1e9),
                   TablePrinter::num(outer_seconds / s.seconds),
                   TablePrinter::num(s.bytes / 1e6),
                   TablePrinter::num(outer_bytes / s.bytes),
                   TablePrinter::num(prev_seconds / s.seconds)});
        prev_seconds = s.seconds;
    }
    std::cout << "paper steps: 5.7x slowdown, then 8.8x, 1.5x, 1.8x "
                 "speedups; overall 4.2x faster and 2.8x less DRAM\n";
    table.print(std::cout);
    return 0;
}
