/**
 * @file
 * Figure 17: design space exploration on (a) prefetch-buffer line
 * size, (b) prefetch-buffer shape at fixed capacity, (c) comparator
 * array size, and (d) look-ahead FIFO size. The paper's chosen design
 * point is 1024x48 lines, 16x16 arrays, 8192-deep look-ahead; the
 * reproduction target is each sweep's shape (diminishing returns /
 * interior optimum), not absolute numbers.
 */

#include <iostream>

#include "bench/bench_common.hh"

namespace
{

using namespace sparch;
using namespace sparch::bench;

/** Fixed workload for all sweeps: a mid-sized power-law square. */
CsrMatrix
workload()
{
    return suiteMatrix(findBenchmark("wiki-Vote"), targetNnz());
}

void
sweepRow(TablePrinter &t, const std::string &label,
         const SpArchConfig &cfg, const CsrMatrix &a)
{
    const SpArchResult r = runSparch(a, cfg);
    t.row({label, TablePrinter::num(r.gflops),
           TablePrinter::num(static_cast<double>(r.bytesTotal) / 1e6,
                             3),
           TablePrinter::num(100.0 * r.prefetchHitRate, 1)});
}

} // namespace

int
main()
{
    const CsrMatrix a = workload();

    {
        TablePrinter t("Figure 17(a): prefetch buffer line size "
                       "(1024 lines x N elements)");
        t.header({"buffer", "GFLOPS", "DRAM MB", "hit rate %"});
        for (std::size_t elems : {24u, 36u, 48u, 60u, 72u, 96u}) {
            SpArchConfig cfg;
            cfg.prefetchLineElems = elems;
            sweepRow(t, "1024x" + std::to_string(elems), cfg, a);
        }
        t.print(std::cout);
        std::cout << "paper: GFLOPS 10.21 -> 10.57, DRAM 216.5 -> "
                     "203.4 MB (diminishing returns past 48)\n\n";
    }

    {
        TablePrinter t("Figure 17(b): buffer shape at fixed capacity "
                       "(49152 elements)");
        t.header({"buffer", "GFLOPS", "DRAM MB", "hit rate %"});
        const std::pair<std::size_t, std::size_t> shapes[] = {
            {2048, 24}, {1024, 48}, {512, 96}, {256, 192}};
        for (const auto &[lines, elems] : shapes) {
            SpArchConfig cfg;
            cfg.prefetchLines = lines;
            cfg.prefetchLineElems = elems;
            sweepRow(t,
                     std::to_string(lines) + "x" +
                         std::to_string(elems),
                     cfg, a);
        }
        t.print(std::cout);
        std::cout << "paper: more lines -> less DRAM (202.1 vs 245.7 "
                     "MB) but replacement latency caps GFLOPS at "
                     "1024-2048 lines\n\n";
    }

    {
        TablePrinter t("Figure 17(c): comparator array size");
        t.header({"array", "GFLOPS", "DRAM MB", "hit rate %"});
        for (unsigned width : {1u, 2u, 4u, 8u, 16u}) {
            SpArchConfig cfg;
            cfg.mergeTree.mergerWidth = width;
            sweepRow(t,
                     std::to_string(width) + "x" +
                         std::to_string(width),
                     cfg, a);
        }
        t.print(std::cout);
        std::cout << "paper: 1.28 -> 10.45 GFLOPS; linear until 8x8, "
                     "then memory bound\n\n";
    }

    {
        TablePrinter t("Figure 17(d): look-ahead FIFO size");
        t.header({"entries", "GFLOPS", "DRAM MB", "hit rate %"});
        for (std::size_t entries :
             {1024u, 2048u, 4096u, 8192u, 16384u}) {
            SpArchConfig cfg;
            cfg.lookaheadFifo = entries;
            sweepRow(t, std::to_string(entries), cfg, a);
        }
        t.print(std::cout);
        std::cout << "paper: 10.04 -> 10.45 GFLOPS, peak at 8192; "
                     "bigger FIFOs pay startup time\n";
    }
    return 0;
}
