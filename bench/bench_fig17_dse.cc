/**
 * @file
 * Figure 17: design space exploration on (a) prefetch-buffer line
 * size, (b) prefetch-buffer shape at fixed capacity, (c) comparator
 * array size, and (d) look-ahead FIFO size. The paper's chosen design
 * point is 1024x48 lines, 16x16 arrays, 8192-deep look-ahead; the
 * reproduction target is each sweep's shape (diminishing returns /
 * interior optimum), not absolute numbers.
 *
 * All four sweeps are enqueued into one BatchRunner and simulated in
 * parallel (SPARCH_BENCH_THREADS workers); the tables print in the
 * paper's order afterwards from the id-sorted records.
 */

#include <iostream>
#include <vector>

#include "bench/bench_common.hh"
#include "driver/workload.hh"

namespace
{

using namespace sparch;
using namespace sparch::bench;

/** One Fig. 17 panel: a title, a closing remark, and its grid points. */
struct Sweep
{
    const char *title;
    const char *remark;
    std::vector<std::size_t> ids;
};

void
printSweep(const Sweep &sweep,
           const std::vector<driver::BatchRecord> &records)
{
    TablePrinter t(sweep.title);
    t.header({"config", "GFLOPS", "DRAM MB", "hit rate %"});
    for (std::size_t id : sweep.ids) {
        const driver::BatchRecord &r = records[id];
        t.row({r.configLabel, TablePrinter::num(r.sim.gflops),
               TablePrinter::num(
                   static_cast<double>(r.sim.bytesTotal) / 1e6, 3),
               TablePrinter::num(100.0 * r.sim.prefetchHitRate, 1)});
    }
    t.print(std::cout);
    std::cout << sweep.remark << "\n";
}

} // namespace

int
main()
{
    // Fixed workload for all sweeps: a mid-sized power-law square,
    // generated once and shared by every grid point.
    const driver::Workload workload =
        driver::suiteWorkload("wiki-Vote", targetNnz());

    driver::BatchRunner runner = makeRunner();
    std::vector<Sweep> sweeps;

    {
        Sweep s{"Figure 17(a): prefetch buffer line size "
                "(1024 lines x N elements)",
                "paper: GFLOPS 10.21 -> 10.57, DRAM 216.5 -> "
                "203.4 MB (diminishing returns past 48)\n",
                {}};
        for (std::size_t elems : {24u, 36u, 48u, 60u, 72u, 96u}) {
            SpArchConfig cfg;
            cfg.prefetchLineElems = elems;
            s.ids.push_back(runner.add(
                "1024x" + std::to_string(elems), cfg, workload));
        }
        sweeps.push_back(std::move(s));
    }

    {
        Sweep s{"Figure 17(b): buffer shape at fixed capacity "
                "(49152 elements)",
                "paper: more lines -> less DRAM (202.1 vs 245.7 "
                "MB) but replacement latency caps GFLOPS at "
                "1024-2048 lines\n",
                {}};
        const std::pair<std::size_t, std::size_t> shapes[] = {
            {2048, 24}, {1024, 48}, {512, 96}, {256, 192}};
        for (const auto &[lines, elems] : shapes) {
            SpArchConfig cfg;
            cfg.prefetchLines = lines;
            cfg.prefetchLineElems = elems;
            s.ids.push_back(runner.add(std::to_string(lines) + "x" +
                                           std::to_string(elems),
                                       cfg, workload));
        }
        sweeps.push_back(std::move(s));
    }

    {
        Sweep s{"Figure 17(c): comparator array size",
                "paper: 1.28 -> 10.45 GFLOPS; linear until 8x8, "
                "then memory bound\n",
                {}};
        for (unsigned width : {1u, 2u, 4u, 8u, 16u}) {
            SpArchConfig cfg;
            cfg.mergeTree.mergerWidth = width;
            s.ids.push_back(runner.add(std::to_string(width) + "x" +
                                           std::to_string(width),
                                       cfg, workload));
        }
        sweeps.push_back(std::move(s));
    }

    {
        Sweep s{"Figure 17(d): look-ahead FIFO size",
                "paper: 10.04 -> 10.45 GFLOPS, peak at 8192; "
                "bigger FIFOs pay startup time",
                {}};
        for (std::size_t entries :
             {1024u, 2048u, 4096u, 8192u, 16384u}) {
            SpArchConfig cfg;
            cfg.lookaheadFifo = entries;
            s.ids.push_back(
                runner.add(std::to_string(entries), cfg, workload));
        }
        sweeps.push_back(std::move(s));
    }

    const std::vector<driver::BatchRecord> records =
        bench::runBatch(runner);
    for (const Sweep &sweep : sweeps)
        printSweep(sweep, records);
    return 0;
}
