/**
 * @file
 * Shared helpers for the benchmark harness.
 *
 * Every bench regenerates one table or figure of the paper's
 * evaluation. Workload scale is controlled by SPARCH_BENCH_NNZ
 * (target nonzeros per benchmark matrix, default 60000): the paper's
 * SuiteSparse matrices are replaced by structural proxies at that
 * scale (DESIGN.md section 2, substitution 1), so *shapes* — who
 * wins, rough factors, where crossovers fall — are the reproduction
 * target, not absolute numbers.
 */

#ifndef SPARCH_BENCH_BENCH_COMMON_HH
#define SPARCH_BENCH_BENCH_COMMON_HH

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "baselines/benchmarks.hh"
#include "bench/json_writer.hh"
#include "check/invariants.hh"
#include "common/logging.hh"
#include "common/table_printer.hh"
#include "core/sparch_simulator.hh"
#include "driver/batch_runner.hh"
#include "driver/thread_pool.hh"
#include "exec/local_executors.hh"
#include "exec/process_pool_executor.hh"

namespace sparch
{
namespace bench
{

/**
 * Parse an unsigned-integer environment knob. A set-but-malformed
 * value ("abc", "12x", "", out of range) aborts loudly: a bench run
 * that silently fell back to the default scale would produce numbers
 * that look valid but measure the wrong workload.
 */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE)
        fatal(name, "='", env, "' is not an unsigned integer");
    return v;
}

/** Target nonzeros per proxy matrix (SPARCH_BENCH_NNZ). */
inline std::uint64_t
targetNnz(std::uint64_t fallback = 60000)
{
    const std::uint64_t nnz = envU64("SPARCH_BENCH_NNZ", fallback);
    if (nnz == 0)
        fatal("SPARCH_BENCH_NNZ=0: benches need a positive nnz scale");
    return nnz;
}

/**
 * Batch-driver worker threads (SPARCH_BENCH_THREADS, default: all
 * hardware threads). 0 also means all, matching the ThreadPool
 * convention; pass 1 for an explicitly serial run.
 */
inline unsigned
benchThreads()
{
    const auto n = static_cast<unsigned>(envU64("SPARCH_BENCH_THREADS", 0));
    return n > 0 ? n : driver::ThreadPool::hardwareThreads();
}

/** A batch runner sized by benchThreads(). */
inline driver::BatchRunner
makeRunner()
{
    return driver::BatchRunner(benchThreads());
}

/**
 * Run a bench grid through the execution backend SPARCH_BENCH_EXEC
 * names (inline | threads | procs, default threads — see
 * exec/executor.hh; all three are byte-identical by contract).
 * `procs` additionally needs SPARCH_BENCH_WORKER pointing at the
 * built sparch binary, since a bench binary has no `worker`
 * subcommand of its own. Failed points abort the bench: a figure
 * with silently missing grid points would be worse than no figure.
 */
inline std::vector<driver::BatchRecord>
runBatch(const driver::BatchRunner &runner)
{
    // SPARCH_BENCH_CHECK=1 is the bench-side `--check`: every grid
    // point's product is validated against the reference SpGEMM and
    // its statistics cross-checked (check/invariants.hh).
    if (const char *deep = std::getenv("SPARCH_BENCH_CHECK"))
        check::setDeepChecks(deep[0] != '\0' && deep[0] != '0');

    const char *env = std::getenv("SPARCH_BENCH_EXEC");
    const std::string kind = env == nullptr ? "threads" : env;

    driver::RunStats stats;
    std::vector<driver::BatchRecord> records;
    if (kind == "threads") {
        records = runner.run(nullptr, &stats);
    } else if (kind == "inline") {
        exec::InlineExecutor serial;
        records = runner.run(serial, nullptr, &stats);
    } else if (kind == "procs") {
        exec::ProcessPoolOptions options;
        options.procs = benchThreads();
        const char *worker = std::getenv("SPARCH_BENCH_WORKER");
        if (worker == nullptr) {
            fatal("SPARCH_BENCH_EXEC=procs needs "
                  "SPARCH_BENCH_WORKER=/path/to/sparch (a bench "
                  "binary cannot act as its own worker)");
        }
        options.workerBinary = worker;
        exec::ProcessPoolExecutor procs(options);
        records = runner.run(procs, nullptr, &stats);
    } else {
        fatal("SPARCH_BENCH_EXEC '", kind,
              "' is not inline, threads or procs");
    }
    for (const driver::FailedPoint &f : stats.failures) {
        warn("grid point ", f.id, " (", f.configLabel, " x ",
             f.workloadName, ") failed: ", f.error);
    }
    if (stats.failed != 0)
        fatal(stats.failed, " grid point(s) failed; figure aborted");
    return records;
}

/**
 * Dump a batch's records as CSV when SPARCH_BENCH_CSV names a path.
 * The same writeCsv schema backs the sparch CLI and the result cache,
 * so a bench's grid can be diffed bit for bit against a CLI sweep of
 * the same grid (the CI cli-smoke job does exactly that).
 */
inline void
maybeWriteCsv(const std::vector<driver::BatchRecord> &records)
{
    const char *path = std::getenv("SPARCH_BENCH_CSV");
    if (path == nullptr)
        return;
    std::ofstream out(path);
    if (!out) {
        warn("SPARCH_BENCH_CSV: cannot write '", path, "'");
        return;
    }
    driver::BatchRunner::writeCsv(records, out);
}

/**
 * Dump a batch's records as JSON when SPARCH_BENCH_JSON names a path.
 * The shared JsonWriter (json_writer.hh) also backs bench_hotpath's
 * BENCH_simulator.json entries, so scripts/bench_trajectory.sh can
 * parse every bench's output with one schema. Unlike the best-effort
 * CSV dump, an unwritable path aborts: a perf-trajectory run whose
 * output silently vanished would be mistaken for a missing data point.
 */
inline void
maybeWriteJson(const std::vector<driver::BatchRecord> &records)
{
    const char *path = std::getenv("SPARCH_BENCH_JSON");
    if (path == nullptr)
        return;
    if (path[0] == '\0')
        fatal("SPARCH_BENCH_JSON is set but empty; give it a path");
    JsonWriter json;
    json.beginObject();
    json.field("schema", "sparch-bench-records-v1");
    json.key("records");
    json.beginArray();
    for (const driver::BatchRecord &r : records) {
        json.beginObject();
        json.field("id", static_cast<std::uint64_t>(r.id));
        json.field("config", r.configLabel);
        json.field("workload", r.workloadName);
        json.field("seed", r.seed);
        json.field("shards", r.shards);
        json.field("cycles", r.sim.cycles);
        json.field("seconds", r.sim.seconds);
        json.field("flops", r.sim.flops);
        json.field("bytes_total", r.sim.bytesTotal);
        json.field("multiplies", r.sim.multiplies);
        json.field("additions", r.sim.additions);
        json.field("result_nnz", static_cast<std::uint64_t>(r.resultNnz));
        json.endObject();
    }
    json.endArray();
    json.endObject();
    std::ofstream out(path);
    if (!out)
        fatal("SPARCH_BENCH_JSON: cannot write '", path, "'");
    out << json.str() << "\n";
}

/** Seconds elapsed since `start` on the steady clock. */
inline double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Fixed-work calibration: a SplitMix64 stream reduction whose cost
 * depends only on the machine, never on the workload scale. Every
 * trajectory-writing bench divides its timing by this so two machines
 * of different speed can be compared ratio-to-ratio, which is what
 * lets CI regression-gate against a trajectory recorded elsewhere
 * (scripts/bench_trajectory.sh, ci.yml perf-smoke).
 */
inline double
calibrationSeconds()
{
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t x = 0x9e3779b97f4a7c15ULL, acc = 0;
    for (std::uint64_t i = 0; i < (1ULL << 25); ++i) {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        acc ^= z ^ (z >> 31);
    }
    // Fold the accumulator into the timing read so the loop cannot be
    // dead-code eliminated.
    volatile std::uint64_t sink = acc;
    (void)sink;
    return secondsSince(start);
}

/** First "model name" line of /proc/cpuinfo, or "unknown". */
inline std::string
cpuModel()
{
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
        const auto colon = line.find(':');
        if (line.rfind("model name", 0) == 0 && colon != std::string::npos) {
            const auto begin = line.find_first_not_of(" \t", colon + 1);
            return begin == std::string::npos ? "unknown"
                                              : line.substr(begin);
        }
    }
    return "unknown";
}

inline std::string
hostName()
{
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) != 0)
        return "unknown";
    return buf;
}

/** The shared "machine" block of a trajectory JSON entry. */
inline void
writeMachineBlock(JsonWriter &json)
{
    json.key("machine");
    json.beginObject();
    json.field("host", hostName());
    json.field("cpu", cpuModel());
    json.field("hardware_threads",
               driver::ThreadPool::hardwareThreads());
    json.field("compiler", __VERSION__);
    json.endObject();
}

/** Generate the proxy for one suite entry at the bench scale. */
inline CsrMatrix
suiteMatrix(const BenchmarkSpec &spec, std::uint64_t target)
{
    return generateBenchmark(spec, defaultScale(spec, target));
}

/** Run SpArch (Table I config unless overridden) on C = A^2. */
inline SpArchResult
runSparch(const CsrMatrix &a, const SpArchConfig &config = {})
{
    SpArchSimulator sim(config);
    return sim.multiply(a, a);
}

} // namespace bench
} // namespace sparch

#endif // SPARCH_BENCH_BENCH_COMMON_HH
