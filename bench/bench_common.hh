/**
 * @file
 * Shared helpers for the benchmark harness.
 *
 * Every bench regenerates one table or figure of the paper's
 * evaluation. Workload scale is controlled by SPARCH_BENCH_NNZ
 * (target nonzeros per benchmark matrix, default 60000): the paper's
 * SuiteSparse matrices are replaced by structural proxies at that
 * scale (DESIGN.md section 2, substitution 1), so *shapes* — who
 * wins, rough factors, where crossovers fall — are the reproduction
 * target, not absolute numbers.
 */

#ifndef SPARCH_BENCH_BENCH_COMMON_HH
#define SPARCH_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/benchmarks.hh"
#include "check/invariants.hh"
#include "common/logging.hh"
#include "common/table_printer.hh"
#include "core/sparch_simulator.hh"
#include "driver/batch_runner.hh"
#include "driver/thread_pool.hh"
#include "exec/local_executors.hh"
#include "exec/process_pool_executor.hh"

namespace sparch
{
namespace bench
{

/** Target nonzeros per proxy matrix (SPARCH_BENCH_NNZ). */
inline std::uint64_t
targetNnz(std::uint64_t fallback = 60000)
{
    if (const char *env = std::getenv("SPARCH_BENCH_NNZ"))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

/**
 * Batch-driver worker threads (SPARCH_BENCH_THREADS, default: all
 * hardware threads). 0 or an unparsable value also means all, matching
 * the ThreadPool convention; pass 1 for an explicitly serial run.
 */
inline unsigned
benchThreads()
{
    if (const char *env = std::getenv("SPARCH_BENCH_THREADS")) {
        const unsigned n =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        if (n > 0)
            return n;
    }
    return driver::ThreadPool::hardwareThreads();
}

/** A batch runner sized by benchThreads(). */
inline driver::BatchRunner
makeRunner()
{
    return driver::BatchRunner(benchThreads());
}

/**
 * Run a bench grid through the execution backend SPARCH_BENCH_EXEC
 * names (inline | threads | procs, default threads — see
 * exec/executor.hh; all three are byte-identical by contract).
 * `procs` additionally needs SPARCH_BENCH_WORKER pointing at the
 * built sparch binary, since a bench binary has no `worker`
 * subcommand of its own. Failed points abort the bench: a figure
 * with silently missing grid points would be worse than no figure.
 */
inline std::vector<driver::BatchRecord>
runBatch(const driver::BatchRunner &runner)
{
    // SPARCH_BENCH_CHECK=1 is the bench-side `--check`: every grid
    // point's product is validated against the reference SpGEMM and
    // its statistics cross-checked (check/invariants.hh).
    if (const char *deep = std::getenv("SPARCH_BENCH_CHECK"))
        check::setDeepChecks(deep[0] != '\0' && deep[0] != '0');

    const char *env = std::getenv("SPARCH_BENCH_EXEC");
    const std::string kind = env == nullptr ? "threads" : env;

    driver::RunStats stats;
    std::vector<driver::BatchRecord> records;
    if (kind == "threads") {
        records = runner.run(nullptr, &stats);
    } else if (kind == "inline") {
        exec::InlineExecutor serial;
        records = runner.run(serial, nullptr, &stats);
    } else if (kind == "procs") {
        exec::ProcessPoolOptions options;
        options.procs = benchThreads();
        const char *worker = std::getenv("SPARCH_BENCH_WORKER");
        if (worker == nullptr) {
            fatal("SPARCH_BENCH_EXEC=procs needs "
                  "SPARCH_BENCH_WORKER=/path/to/sparch (a bench "
                  "binary cannot act as its own worker)");
        }
        options.workerBinary = worker;
        exec::ProcessPoolExecutor procs(options);
        records = runner.run(procs, nullptr, &stats);
    } else {
        fatal("SPARCH_BENCH_EXEC '", kind,
              "' is not inline, threads or procs");
    }
    for (const driver::FailedPoint &f : stats.failures) {
        warn("grid point ", f.id, " (", f.configLabel, " x ",
             f.workloadName, ") failed: ", f.error);
    }
    if (stats.failed != 0)
        fatal(stats.failed, " grid point(s) failed; figure aborted");
    return records;
}

/**
 * Dump a batch's records as CSV when SPARCH_BENCH_CSV names a path.
 * The same writeCsv schema backs the sparch CLI and the result cache,
 * so a bench's grid can be diffed bit for bit against a CLI sweep of
 * the same grid (the CI cli-smoke job does exactly that).
 */
inline void
maybeWriteCsv(const std::vector<driver::BatchRecord> &records)
{
    const char *path = std::getenv("SPARCH_BENCH_CSV");
    if (path == nullptr)
        return;
    std::ofstream out(path);
    if (!out) {
        warn("SPARCH_BENCH_CSV: cannot write '", path, "'");
        return;
    }
    driver::BatchRunner::writeCsv(records, out);
}

/** Generate the proxy for one suite entry at the bench scale. */
inline CsrMatrix
suiteMatrix(const BenchmarkSpec &spec, std::uint64_t target)
{
    return generateBenchmark(spec, defaultScale(spec, target));
}

/** Run SpArch (Table I config unless overridden) on C = A^2. */
inline SpArchResult
runSparch(const CsrMatrix &a, const SpArchConfig &config = {})
{
    SpArchSimulator sim(config);
    return sim.multiply(a, a);
}

} // namespace bench
} // namespace sparch

#endif // SPARCH_BENCH_BENCH_COMMON_HH
