/**
 * @file
 * Memory-system design space exploration: the missing axis of Fig. 17.
 *
 * Crosses the Fig. 17 structural grid (prefetch-buffer line size and
 * comparator-array width around the Table I design point) with the
 * four memory backends (hbm, ddr4, lpddr4, ideal) over several suite
 * workloads. The ideal backend isolates the compute-bound component:
 * the printed "mem-bound %" is the fraction of each real backend's
 * cycles that the memory system costs.
 *
 * The run self-checks the physical ordering every point must obey —
 * ideal <= hbm <= ddr4 in cycles (ideal has infinite bandwidth; the
 * default DDR4 point never beats HBM on latency or bandwidth) — and
 * exits nonzero on a violation.
 *
 * CSV: written to SPARCH_BENCH_CSV if set, else bench_memory_dse.csv.
 * Scale via SPARCH_BENCH_NNZ / SPARCH_BENCH_THREADS as usual.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "baselines/outerspace_model.hh"
#include "bench/bench_common.hh"
#include "driver/workload.hh"
#include "mem/memory_model.hh"

namespace
{

using namespace sparch;
using namespace sparch::bench;

struct Structural
{
    const char *label;
    SpArchConfig config;
};

} // namespace

int
main()
{
    const std::uint64_t nnz = targetNnz();
    const std::vector<driver::Workload> workloads = {
        driver::suiteWorkload("wiki-Vote", nnz),
        driver::suiteWorkload("email-Enron", nnz),
        driver::suiteWorkload("poisson3Da", nnz),
    };

    // The structural axis: the Table I point plus one step along the
    // Fig. 17(a) line-size and Fig. 17(c) comparator sweeps.
    std::vector<Structural> structurals;
    structurals.push_back({"1024x48", SpArchConfig{}});
    {
        SpArchConfig cfg;
        cfg.prefetchLineElems = 24;
        structurals.push_back({"1024x24", cfg});
    }
    {
        SpArchConfig cfg;
        cfg.prefetchLineElems = 96;
        structurals.push_back({"1024x96", cfg});
    }
    {
        SpArchConfig cfg;
        cfg.mergeTree.mergerWidth = 8;
        structurals.push_back({"cmp8x8", cfg});
    }

    const mem::MemoryKind kinds[] = {
        mem::MemoryKind::Hbm, mem::MemoryKind::Ddr4,
        mem::MemoryKind::Lpddr4, mem::MemoryKind::Ideal};

    std::vector<std::pair<std::string, SpArchConfig>> configs;
    for (const Structural &s : structurals) {
        for (mem::MemoryKind kind : kinds) {
            SpArchConfig cfg = s.config;
            cfg.memory.kind = kind;
            configs.emplace_back(std::string(mem::memoryKindName(kind)) +
                                     "/" + s.label,
                                 cfg);
        }
    }

    driver::BatchRunner runner = makeRunner();
    runner.addGrid(configs, workloads);
    const std::vector<driver::BatchRecord> records =
        bench::runBatch(runner);

    // cycles[(structural, workload)][kind]
    std::map<std::pair<std::string, std::string>,
             std::map<mem::MemoryKind, Cycle>>
        cycles;
    for (const driver::BatchRecord &r : records) {
        const std::size_t slash = r.configLabel.find('/');
        const std::string kind_name = r.configLabel.substr(0, slash);
        const std::string structural = r.configLabel.substr(slash + 1);
        for (mem::MemoryKind kind : kinds) {
            if (kind_name == mem::memoryKindName(kind))
                cycles[{structural, r.workloadName}][kind] =
                    r.sim.cycles;
        }
    }

    for (const Structural &s : structurals) {
        TablePrinter t(std::string("memory DSE at ") + s.label +
                       " (cycles; mem-bound % = 1 - ideal/real)");
        t.header({"workload", "ideal", "hbm", "ddr4", "lpddr4",
                  "hbm mem-bound %", "ddr4 mem-bound %"});
        for (const driver::Workload &w : workloads) {
            const auto &c = cycles.at({s.label, w.name()});
            const auto pct = [&](mem::MemoryKind kind) {
                const double real = static_cast<double>(c.at(kind));
                return real == 0.0
                           ? 0.0
                           : 100.0 *
                                 (1.0 -
                                  static_cast<double>(
                                      c.at(mem::MemoryKind::Ideal)) /
                                      real);
            };
            t.row({w.name(),
                   std::to_string(c.at(mem::MemoryKind::Ideal)),
                   std::to_string(c.at(mem::MemoryKind::Hbm)),
                   std::to_string(c.at(mem::MemoryKind::Ddr4)),
                   std::to_string(c.at(mem::MemoryKind::Lpddr4)),
                   TablePrinter::num(pct(mem::MemoryKind::Hbm), 1),
                   TablePrinter::num(pct(mem::MemoryKind::Ddr4), 1)});
        }
        t.print(std::cout);
    }

    // Apples-to-apples baseline: OuterSPACE rebased onto each real
    // memory backend (outerspaceConfigFor scales its deliverable
    // bandwidth and re-prices the DRAM energy share), compared against
    // SpArch on the *same* memory at the Table I structural point.
    {
        TablePrinter t("SpArch vs OuterSPACE on the same memory "
                       "(speedup = OuterSPACE time / SpArch time)");
        t.header({"workload", "hbm", "ddr4", "lpddr4"});
        const mem::MemoryKind real_kinds[] = {mem::MemoryKind::Hbm,
                                              mem::MemoryKind::Ddr4,
                                              mem::MemoryKind::Lpddr4};
        bool sparch_always_wins = true;
        for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
            const driver::Workload &w = workloads[wi];
            std::vector<std::string> row{w.name()};
            for (mem::MemoryKind kind : real_kinds) {
                mem::MemoryConfig memcfg;
                memcfg.kind = kind;
                const BaselineResult outer = outerspaceModel(
                    w.left(), w.right(),
                    outerspaceConfigFor(memcfg));
                // records are config-major; workload wi of config ci
                // sits at ci * workloads.size() + wi. The memory
                // kinds sit at structural 0 in `kinds` order.
                std::size_t ci = 0;
                while (configs[ci].second.memory.kind != kind)
                    ++ci;
                const driver::BatchRecord &r =
                    records[ci * workloads.size() + wi];
                const double speedup =
                    r.sim.seconds > 0.0
                        ? outer.seconds / r.sim.seconds
                        : 0.0;
                sparch_always_wins &= speedup >= 1.0;
                row.push_back(TablePrinter::num(speedup, 2) + "x");
            }
            t.row(std::move(row));
        }
        t.print(std::cout);
        if (!sparch_always_wins)
            std::cout << "note: OuterSPACE wins some points at this "
                         "scale\n";
    }

    // CSV for offline analysis: SPARCH_BENCH_CSV, or the default path
    // so "emit a CSV" holds even without the env var.
    if (std::getenv("SPARCH_BENCH_CSV") != nullptr) {
        maybeWriteCsv(records);
    } else {
        std::ofstream out("bench_memory_dse.csv");
        if (out)
            driver::BatchRunner::writeCsv(records, out);
    }

    // Self-check: ideal <= hbm <= ddr4 on every (structural, workload)
    // grid point. When the pipeline is structure-bound (tiny
    // SPARCH_BENCH_NNZ), faster memory can reorder arrivals and cost
    // a few tens of cycles, so a 1% relative slack separates that
    // noise from a real model regression; at the memory-bound default
    // scale the ordering holds strictly.
    constexpr double kNoise = 0.01;
    const auto leq = [](Cycle lo, Cycle hi) {
        return static_cast<double>(lo) <=
               static_cast<double>(hi) * (1.0 + kNoise);
    };
    std::size_t violations = 0;
    std::size_t strict = 0;
    for (const auto &[point, by_kind] : cycles) {
        const Cycle ideal = by_kind.at(mem::MemoryKind::Ideal);
        const Cycle hbm = by_kind.at(mem::MemoryKind::Hbm);
        const Cycle ddr4 = by_kind.at(mem::MemoryKind::Ddr4);
        if (!(leq(ideal, hbm) && leq(hbm, ddr4))) {
            std::cout << "ORDERING VIOLATION at " << point.first << "/"
                      << point.second << ": ideal=" << ideal
                      << " hbm=" << hbm << " ddr4=" << ddr4 << "\n";
            ++violations;
        } else if (ideal <= hbm && hbm <= ddr4) {
            ++strict;
        }
    }
    if (violations > 0) {
        std::cout << violations
                  << " grid point(s) violate ideal <= hbm <= ddr4\n";
        return 1;
    }
    std::cout << "ordering OK: ideal <= hbm <= ddr4 in cycles on all "
              << cycles.size() << " grid points (" << strict
              << " strictly, " << cycles.size() - strict
              << " within reordering noise)\n";
    return 0;
}
