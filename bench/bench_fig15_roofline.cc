/**
 * @file
 * Figure 15: roofline analysis. Paper: theoretical operational
 * intensity 0.19 Flops/Byte on the dataset, computation roof
 * 32 GFLOPS, bandwidth roof at OI 0.19 = 23.9 GFLOPS; SpArch achieves
 * 10.4 GFLOPS vs OuterSPACE's 2.5.
 */

#include <iostream>

#include "baselines/outerspace_model.hh"
#include "bench/bench_common.hh"
#include "matrix/reference_spgemm.hh"
#include "model/roofline.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    const std::uint64_t target = targetNnz(40000);

    // Aggregate the operational intensity and achieved GFLOPS over
    // the suite, exactly as the paper aggregates its dataset.
    double flops_total = 0.0, bytes_total = 0.0;
    double sparch_time = 0.0, outer_time = 0.0;
    for (const auto &spec : benchmarkSuite()) {
        const CsrMatrix a = suiteMatrix(spec, target);
        SpgemmCounts counts;
        spgemmDenseAccumulator(a, a, &counts);
        flops_total += 2.0 * static_cast<double>(counts.multiplies);
        bytes_total +=
            2.0 * static_cast<double>(a.storageBytes()) +
            static_cast<double>(counts.outputNnz) * bytesPerElement;

        sparch_time += runSparch(a).seconds;
        outer_time += outerspaceModel(a, a).seconds;
    }
    const double oi = flops_total / bytes_total;
    const double sparch_gflops = flops_total / sparch_time / 1e9;
    const double outer_gflops = flops_total / outer_time / 1e9;

    Roofline roof;
    TablePrinter table("Figure 15: roofline model");
    table.header({"quantity", "this repo", "paper"});
    table.row({"Operational intensity (Flops/Byte)",
               TablePrinter::num(oi, 3), "0.19"});
    table.row({"Computation roof (GFLOPS)",
               TablePrinter::num(roof.peakGflops, 1), "32.0"});
    table.row({"Bandwidth roof at OI (GFLOPS)",
               TablePrinter::num(roof.attainable(oi), 1), "23.9"});
    table.row({"SpArch achieved (GFLOPS)",
               TablePrinter::num(sparch_gflops, 1), "10.4"});
    table.row({"OuterSPACE achieved (GFLOPS)",
               TablePrinter::num(outer_gflops, 1), "2.5"});
    table.row({"SpArch fraction of roof",
               TablePrinter::num(sparch_gflops / roof.attainable(oi),
                                 2),
               "0.44"});
    table.print(std::cout);
    return 0;
}
