/**
 * @file
 * Ablation: buffer replacement policy. Section II-D claims the
 * distance-list-driven policy is "near-optimal" because the access
 * sequence is known ahead of time. This bench quantifies the claim by
 * swapping the ranking function: Belady (the paper's design) vs LRU
 * vs FIFO, at two buffer sizes, over a mixed set of matrices.
 *
 * The policy x matrix grid goes through the batch driver as one
 * cross product; rows aggregate the records per policy.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "driver/workload.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    const std::uint64_t target = targetNnz();
    const char *names[] = {"wiki-Vote", "2cubes_sphere", "scircuit",
                           "web-Google"};

    TablePrinter t("Ablation: prefetch-buffer replacement policy "
                   "(Section II-D's near-Belady claim)");
    t.header({"buffer", "policy", "hit rate %", "MatB MB", "GFLOPS"});

    std::vector<driver::Workload> workloads;
    for (const char *name : names)
        workloads.push_back(driver::suiteWorkload(name, target));

    // A single (paper-sized) buffer: small buffers with recency
    // policies thrash via demand refetches and take minutes of
    // simulation, without changing the ranking.
    const std::size_t lines = 1024;
    std::vector<std::pair<std::string, SpArchConfig>> configs;
    for (const ReplacementPolicy policy :
         {ReplacementPolicy::Belady, ReplacementPolicy::Lru,
          ReplacementPolicy::Fifo}) {
        SpArchConfig cfg;
        cfg.prefetchLines = lines;
        cfg.replacement = policy;
        configs.emplace_back(replacementPolicyName(policy), cfg);
    }

    driver::BatchRunner runner = makeRunner();
    runner.addGrid(configs, workloads);
    const std::vector<driver::BatchRecord> records =
        bench::runBatch(runner);

    // addGrid is configuration-major: one contiguous stripe of
    // `workloads.size()` records per policy.
    for (std::size_t p = 0; p < configs.size(); ++p) {
        double hits = 0.0, misses = 0.0, bytes = 0.0;
        double flops = 0.0, seconds = 0.0;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            const SpArchResult &r =
                records[p * workloads.size() + w].sim;
            hits += r.stats.get("row_prefetcher.hits");
            misses += r.stats.get("row_prefetcher.misses");
            bytes += static_cast<double>(r.bytesMatB);
            flops += static_cast<double>(r.flops);
            seconds += r.seconds;
        }
        t.row({std::to_string(lines) + "x48", configs[p].first,
               TablePrinter::num(100.0 * hits / (hits + misses), 1),
               TablePrinter::num(bytes / 1e6, 3),
               TablePrinter::num(flops / seconds / 1e9)});
    }
    t.print(std::cout);
    std::cout << "expected: Belady >= LRU >= FIFO hit rate, with the "
                 "gap widening as the buffer shrinks\n";
    return 0;
}
