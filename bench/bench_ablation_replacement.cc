/**
 * @file
 * Ablation: buffer replacement policy. Section II-D claims the
 * distance-list-driven policy is "near-optimal" because the access
 * sequence is known ahead of time. This bench quantifies the claim by
 * swapping the ranking function: Belady (the paper's design) vs LRU
 * vs FIFO, at two buffer sizes, over a mixed set of matrices.
 */

#include <iostream>

#include "bench/bench_common.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    const std::uint64_t target = targetNnz();
    const char *names[] = {"wiki-Vote", "2cubes_sphere", "scircuit",
                           "web-Google"};

    TablePrinter t("Ablation: prefetch-buffer replacement policy "
                   "(Section II-D's near-Belady claim)");
    t.header({"buffer", "policy", "hit rate %", "MatB MB", "GFLOPS"});
    // A single (paper-sized) buffer: small buffers with recency
    // policies thrash via demand refetches and take minutes of
    // simulation, without changing the ranking.
    for (const std::size_t lines : {1024u}) {
        for (const ReplacementPolicy policy :
             {ReplacementPolicy::Belady, ReplacementPolicy::Lru,
              ReplacementPolicy::Fifo}) {
            double hits = 0.0, misses = 0.0, bytes = 0.0;
            double flops = 0.0, seconds = 0.0;
            for (const char *name : names) {
                SpArchConfig cfg;
                cfg.prefetchLines = lines;
                cfg.replacement = policy;
                const CsrMatrix a =
                    suiteMatrix(findBenchmark(name), target);
                const SpArchResult r = runSparch(a, cfg);
                hits += r.stats.get("row_prefetcher.hits");
                misses += r.stats.get("row_prefetcher.misses");
                bytes += static_cast<double>(r.bytesMatB);
                flops += static_cast<double>(r.flops);
                seconds += r.seconds;
            }
            t.row({std::to_string(lines) + "x48",
                   replacementPolicyName(policy),
                   TablePrinter::num(100.0 * hits / (hits + misses),
                                     1),
                   TablePrinter::num(bytes / 1e6, 3),
                   TablePrinter::num(flops / seconds / 1e9)});
        }
    }
    t.print(std::cout);
    std::cout << "expected: Belady >= LRU >= FIFO hit rate, with the "
                 "gap widening as the buffer shrinks\n";
    return 0;
}
