/**
 * @file
 * Table III: energy (nJ/FLOP) and area breakdown, SpArch vs
 * OuterSPACE. The energy split is measured from simulated event
 * counts over the benchmark suite; OuterSPACE's column reproduces the
 * paper's published constants.
 */

#include <iostream>

#include "bench/bench_common.hh"
#include "common/table_printer.hh"
#include "model/energy_model.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    const std::uint64_t target = targetNnz(40000);
    const EnergyModel model;

    double comp = 0.0, sram = 0.0, dram = 0.0;
    std::uint64_t flops = 0;
    for (const auto &spec : benchmarkSuite()) {
        const CsrMatrix a = suiteMatrix(spec, target);
        const SpArchResult r = runSparch(a);
        const EnergyBreakdown e = model.energy(r);
        comp += e.computationJ;
        sram += e.sramJ;
        dram += e.dramJ;
        flops += r.flops;
    }
    const double per_flop = 1e9 / static_cast<double>(flops);

    TablePrinter energy("Table III (energy): nJ/FLOP breakdown");
    energy.header({"component", "SpArch (this repo)",
                   "SpArch (paper)", "OuterSPACE (paper)"});
    energy.row({"Computation", TablePrinter::num(comp * per_flop),
                "0.26", "3.19"});
    energy.row({"SRAM", TablePrinter::num(sram * per_flop), "0.34",
                "0.35"});
    energy.row({"DRAM", TablePrinter::num(dram * per_flop), "0.29",
                "1.20"});
    energy.row({"Crossbar", "N/A", "N/A", "0.21"});
    energy.row({"Overall",
                TablePrinter::num((comp + sram + dram) * per_flop),
                "0.89", "4.95"});
    energy.print(std::cout);

    std::cout << "\n";
    const AreaBreakdown a = model.area();
    // Regroup Fig. 13 modules into the Table III categories:
    // computation = multipliers + merge-tree comparator logic;
    // SRAM = buffers, FIFOs, fetch queues.
    const double comp_area = a.multiplierArray + 0.6 * a.mergeTree;
    const double sram_area = a.total() - comp_area;
    TablePrinter area("Table III (area): mm^2 breakdown");
    area.header({"component", "SpArch (this repo)", "SpArch (paper)",
                 "OuterSPACE (paper)"});
    area.row({"Computation", TablePrinter::num(comp_area), "4.1",
              "49.1"});
    area.row({"SRAM", TablePrinter::num(sram_area), "24.4", "37.5"});
    area.row({"Crossbar", "N/A", "N/A", "0.1"});
    area.row({"Overall", TablePrinter::num(a.total()), "28.5",
              "86.7"});
    area.print(std::cout);
    return 0;
}
