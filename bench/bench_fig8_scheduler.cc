/**
 * @file
 * Figure 8: the worked scheduler example. Leaves
 * {15,15,13,12,9,7,3,2,2,2,2,2}; the paper reports total node weights
 * of 365 (2-way sequential as drawn), 354 (2-way Huffman) and 228
 * (4-way Huffman). The two Huffman values are exact reproduction
 * targets; the sequential total depends on the (unpublished) arrival
 * order of the figure, so our FIFO-order variant is reported with
 * that caveat.
 */

#include <iostream>

#include "common/table_printer.hh"
#include "core/huffman_scheduler.hh"

int
main()
{
    using namespace sparch;

    const std::vector<std::uint64_t> leaves = {15, 15, 13, 12, 9, 7,
                                               3,  2,  2,  2,  2, 2};
    TablePrinter t("Figure 8: scheduler comparison on the worked "
                   "example");
    t.header({"scheduler", "rounds", "internal weight",
              "total node weight", "paper"});
    auto row = [&](const char *name, unsigned ways,
                   SchedulerKind kind, const char *paper) {
        const MergePlan plan = buildMergePlan(leaves, ways, kind);
        t.row({name, std::to_string(plan.rounds.size()),
               std::to_string(plan.internalWeight()),
               std::to_string(plan.totalWeight()), paper});
    };
    row("2-way sequential", 2, SchedulerKind::Sequential,
        "365 (figure's arrival order)");
    row("2-way Huffman", 2, SchedulerKind::Huffman, "354");
    row("4-way Huffman", 4, SchedulerKind::Huffman, "228");
    row("64-way Huffman", 64, SchedulerKind::Huffman, "-");
    t.print(std::cout);
    return 0;
}
