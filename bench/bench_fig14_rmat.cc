/**
 * @file
 * Figure 14: performance on synthesized rMAT matrices vs the MKL
 * proxy, sweeping vertex count (5k..80k) and edge factor (x4..x32) so
 * density spans ~6e-3 to ~5e-5. The paper's claims to reproduce: (1)
 * SpArch is ~10x faster throughout, and (2) SpArch degrades only
 * ~2.7x from the densest to the sparsest point while MKL degrades
 * ~5.9x.
 *
 * Vertex counts are scaled by SPARCH_BENCH_RMAT_DIV (default 8) to
 * keep cycle simulation tractable; density, the x-axis of the paper's
 * figure, is preserved by scaling the comparison within each edge
 * factor.
 *
 * The 19 cycle simulations run in parallel through the batch driver
 * (SPARCH_BENCH_THREADS workers); the analytic MKL proxy is evaluated
 * afterwards on the cached workload matrices.
 *
 * Shard-scaling mode: setting SPARCH_BENCH_SHARDS to a comma-
 * separated list of shard counts (e.g. "1,2,4,8") appends a table
 * that re-runs the densest and sparsest R-MAT points through
 * ShardedSimulator at each count, comparing critical-path cycles,
 * DRAM traffic and load balance against the monolithic run.
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>

#include "baselines/platform_models.hh"
#include "bench/bench_common.hh"
#include "driver/workload.hh"
#include "matrix/rmat.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    unsigned div = 8;
    if (const char *env = std::getenv("SPARCH_BENCH_RMAT_DIV"))
        div = static_cast<unsigned>(std::strtoul(env, nullptr, 10));

    TablePrinter table("Figure 14: FLOPS on rMAT benchmarks "
                       "(vertex counts / " +
                       std::to_string(div) + ")");
    table.header({"matrix", "density", "SpArch GFLOP/s",
                  "MKL-proxy GFLOP/s", "speedup"});

    struct Point
    {
        unsigned kilo_vertices;
        unsigned edge_factor;
    };
    // The paper's 19 points, ordered as in Fig. 14 (by density).
    const Point points[] = {
        {5, 32},  {5, 16},  {10, 32}, {5, 8},   {10, 16},
        {20, 32}, {5, 4},   {10, 8},  {20, 16}, {40, 32},
        {10, 4},  {20, 8},  {40, 16}, {20, 4},  {40, 8},
        {80, 16}, {40, 4},  {80, 8},  {80, 4}};

    driver::BatchRunner runner = makeRunner();
    std::vector<driver::Workload> workloads;
    for (const Point &pt : points) {
        const Index vertices = pt.kilo_vertices * 1000u / div;
        workloads.push_back(
            driver::rmatWorkload(vertices, pt.edge_factor, 1234));
        runner.add("table-I", SpArchConfig{}, workloads.back());
    }
    const std::vector<driver::BatchRecord> records =
        bench::runBatch(runner);

    std::vector<double> ours, mkls;
    double first_ours = 0.0, last_ours = 0.0;
    double first_mkl = 0.0, last_mkl = 0.0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const Point &pt = points[i];
        // The workload matrix is still cached from the batch run.
        const CsrMatrix &a = workloads[i].left();
        const double density =
            static_cast<double>(a.nnz()) /
            (static_cast<double>(a.rows()) * a.cols());

        const SpArchResult &sparch = records[i].sim;
        const BaselineResult mkl = mklProxy(a, a);
        ours.push_back(sparch.gflops);
        mkls.push_back(mkl.gflops);
        if (first_ours == 0.0) {
            first_ours = sparch.gflops;
            first_mkl = mkl.gflops;
        }
        last_ours = sparch.gflops;
        last_mkl = mkl.gflops;

        table.row({"rmat-" + std::to_string(pt.kilo_vertices) + "k-x" +
                       std::to_string(pt.edge_factor),
                   TablePrinter::sci(density, 1),
                   TablePrinter::num(sparch.gflops),
                   TablePrinter::num(mkl.gflops, 3),
                   TablePrinter::num(sparch.gflops / mkl.gflops, 1)});
    }
    table.row({"GeoMean", "", TablePrinter::num(geoMean(ours)),
               TablePrinter::num(geoMean(mkls), 3),
               TablePrinter::num(geoMean(ours) / geoMean(mkls), 1)});
    table.row({"Degradation dense->sparse (paper: 2.7x vs 5.9x)", "",
               TablePrinter::num(first_ours / last_ours, 1) + "x",
               TablePrinter::num(first_mkl / last_mkl, 1) + "x", ""});
    table.print(std::cout);

    // ---- shard-scaling mode (SPARCH_BENCH_SHARDS=1,2,4,...) ----
    const char *shards_env = std::getenv("SPARCH_BENCH_SHARDS");
    if (!shards_env)
        return 0;
    std::vector<unsigned> shard_counts;
    std::istringstream shard_list(shards_env);
    for (std::string tok; std::getline(shard_list, tok, ',');) {
        const unsigned n =
            static_cast<unsigned>(std::strtoul(tok.c_str(), nullptr, 10));
        if (n > 0)
            shard_counts.push_back(n);
    }
    if (shard_counts.empty())
        return 0;
    // The monolithic point anchors every speedup column.
    if (std::find(shard_counts.begin(), shard_counts.end(), 1u) ==
        shard_counts.end()) {
        shard_counts.insert(shard_counts.begin(), 1u);
    }

    TablePrinter scaling("Shard scaling: row-block sharded vs "
                         "monolithic (nnz-balanced)");
    scaling.header({"matrix", "shards", "cycles", "speedup",
                    "DRAM MB", "imbalance"});
    driver::BatchRunner shard_runner = makeRunner();
    // Densest and sparsest points: sharding helps most where per-
    // shard merge plans stay shallow, so show both extremes.
    const std::vector<driver::Workload> extremes = {workloads.front(),
                                                    workloads.back()};
    shard_runner.addShardSweep({{"table-I", SpArchConfig{}}}, extremes,
                               shard_counts);
    const std::vector<driver::BatchRecord> shard_records =
        bench::runBatch(shard_runner);
    // Anchor each workload's speedup on its own monolithic record,
    // whatever order the shard counts were given in.
    std::map<std::string, double> mono_cycles;
    for (const driver::BatchRecord &r : shard_records) {
        if (r.shards == 1)
            mono_cycles[r.workloadName] =
                static_cast<double>(r.sim.cycles);
    }
    for (const driver::BatchRecord &r : shard_records) {
        const double mono = mono_cycles[r.workloadName];
        scaling.row(
            {r.workloadName, std::to_string(r.shards),
             std::to_string(r.sim.cycles),
             mono > 0.0
                 ? TablePrinter::num(mono / static_cast<double>(
                                                r.sim.cycles),
                                     2) + "x"
                 : "-",
             TablePrinter::num(
                 static_cast<double>(r.sim.bytesTotal) / 1e6, 3),
             // Monolithic runs carry no shard gauges.
             r.sim.stats.has("shard.nnz_imbalance")
                 ? TablePrinter::num(
                       r.sim.stats.get("shard.nnz_imbalance"), 2)
                 : "-"});
    }
    scaling.print(std::cout);
    return 0;
}
