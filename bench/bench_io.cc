/**
 * @file
 * I/O microbenchmark: the text-parse, convert and mapped-load legs of
 * the out-of-core matrix pipeline.
 *
 * Four timings on one generated Matrix Market file:
 *
 *  - istream parse   the pre-from_chars reader loop (operator>> token
 *                    extraction into a CooMatrix, then fromCoo),
 *                    reimplemented here verbatim as the baseline the
 *                    rewrite replaced;
 *  - from_chars parse readMatrixMarketFile, the production reader
 *                    (buffered std::from_chars scan). The ratio of
 *                    the two medians is the recorded text-parse
 *                    speedup;
 *  - convert         convertMatrixMarketToScsr, the streaming
 *                    double-buffered .mtx -> .scsr pipeline;
 *  - mapped load     MappedCsr::open + toCsr on the converted file.
 *
 * Knobs: SPARCH_BENCH_IO_NNZ (generated nonzeros, default 2000000),
 * SPARCH_BENCH_REPS (repetitions, default 3; medians are reported).
 *
 * With SPARCH_BENCH_JSON=<path> the result is written as one
 * BENCH_simulator.json trajectory entry (schema sparch-bench-io-v1).
 * `convert_mb_per_calibration` multiplies converter throughput by the
 * fixed-work calibration time so two machines can be compared
 * ratio-to-ratio (scripts/bench_trajectory.sh, ci.yml perf-smoke).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/json_writer.hh"
#include "matrix/coo.hh"
#include "matrix/generators.hh"
#include "matrix/matrix_market.hh"
#include "matrix/scsr.hh"
#include "matrix/scsr_convert.hh"

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * The reader loop this PR replaced: one operator>> extraction per
 * token into a CooMatrix, then canonicalize + fromCoo — kept here,
 * and only here, as the speedup baseline.
 */
sparch::CsrMatrix
istreamRead(const std::string &path)
{
    using namespace sparch;
    std::ifstream in(path);
    if (!in)
        fatal("bench_io: cannot open '", path, "'");
    const MatrixMarketHeader header = readMatrixMarketHeader(in);
    CooMatrix coo(static_cast<Index>(header.rows),
                  static_cast<Index>(header.cols));
    coo.triplets().reserve(header.entries);
    std::uint64_t row = 0, col = 0;
    double value = 0.0;
    for (std::uint64_t i = 0; i < header.entries; ++i) {
        if (!(in >> row >> col >> value))
            fatal("bench_io: truncated at entry ", i);
        coo.add(static_cast<Index>(row - 1),
                static_cast<Index>(col - 1), value);
    }
    coo.canonicalize();
    return CsrMatrix::fromCoo(coo);
}

double
medianOf(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

} // namespace

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    const std::uint64_t nnz = envU64("SPARCH_BENCH_IO_NNZ", 2000000);
    if (nnz == 0)
        fatal("SPARCH_BENCH_IO_NNZ=0: need a positive nnz scale");
    const auto reps =
        static_cast<unsigned>(envU64("SPARCH_BENCH_REPS", 3));
    if (reps == 0)
        fatal("SPARCH_BENCH_REPS=0: need at least one repetition");

    // Square at ~1% density so the file workload shape matches what
    // the sweep pipeline feeds (file workloads compute C = A^2).
    const auto side = static_cast<Index>(std::max(
        1.0, std::ceil(std::sqrt(static_cast<double>(nnz) * 100.0))));
    const CsrMatrix m = generateUniform(side, side, nnz, 42);

    const std::string dir =
        std::filesystem::temp_directory_path().string() + "/";
    const std::string mtx = dir + "sparch_bench_io.mtx";
    const std::string scsr = dir + "sparch_bench_io.scsr";
    writeMatrixMarketFile(m, mtx);
    const double file_mb =
        static_cast<double>(std::filesystem::file_size(mtx)) / 1e6;

    // One untimed warmup of each leg: first touch pays for page cache
    // population and allocator growth, which belong to setup.
    if (istreamRead(mtx).nnz() != m.nnz())
        fatal("bench_io: istream baseline mismatch");
    if (readMatrixMarketFile(mtx).nnz() != m.nnz())
        fatal("bench_io: from_chars reader mismatch");

    std::vector<double> istream_s, from_chars_s, convert_s, load_s;
    for (unsigned rep = 0; rep < reps; ++rep) {
        auto start = Clock::now();
        const CsrMatrix legacy = istreamRead(mtx);
        istream_s.push_back(secondsSince(start));

        start = Clock::now();
        const CsrMatrix fast = readMatrixMarketFile(mtx);
        from_chars_s.push_back(secondsSince(start));
        if (fast.nnz() != legacy.nnz())
            fatal("bench_io: readers disagree on nnz");

        start = Clock::now();
        convertMatrixMarketToScsr(mtx, scsr);
        convert_s.push_back(secondsSince(start));

        start = Clock::now();
        const CsrMatrix loaded = MappedCsr::open(scsr).toCsr();
        load_s.push_back(secondsSince(start));
        if (loaded.nnz() != m.nnz())
            fatal("bench_io: mapped load lost entries");
    }

    const double istream_med = medianOf(istream_s);
    const double from_chars_med = medianOf(from_chars_s);
    const double convert_med = medianOf(convert_s);
    const double load_med = medianOf(load_s);
    const double speedup = istream_med / from_chars_med;
    const double convert_mb_s = file_mb / convert_med;
    const double scsr_mb =
        static_cast<double>(std::filesystem::file_size(scsr)) / 1e6;
    const double load_mb_s = scsr_mb / load_med;
    const double calib = calibrationSeconds();

    TablePrinter table("I/O pipeline: parse, convert, mapped load");
    table.header({"metric", "value"});
    table.row({"nnz", std::to_string(m.nnz())});
    table.row({"mtx MB", TablePrinter::num(file_mb)});
    table.row({"scsr MB", TablePrinter::num(scsr_mb)});
    table.row({"repetitions", std::to_string(reps)});
    table.row({"istream parse s", TablePrinter::num(istream_med)});
    table.row({"from_chars parse s", TablePrinter::num(from_chars_med)});
    table.row({"parse speedup", TablePrinter::num(speedup)});
    table.row({"convert s", TablePrinter::num(convert_med)});
    table.row({"convert MB/s", TablePrinter::num(convert_mb_s)});
    table.row({"mapped load s", TablePrinter::num(load_med)});
    table.row({"mapped load MB/s", TablePrinter::num(load_mb_s)});
    table.row({"calibration seconds", TablePrinter::num(calib)});
    table.row({"convert MB/calibration",
               TablePrinter::num(convert_mb_s * calib)});
    table.print(std::cout);

    if (const char *path = std::getenv("SPARCH_BENCH_JSON")) {
        if (path[0] == '\0')
            fatal("SPARCH_BENCH_JSON is set but empty; give it a path");
        JsonWriter json;
        json.beginObject();
        json.field("schema", "sparch-bench-io-v1");
        json.field("workload", "uniform-1pct-square");
        json.field("nnz", m.nnz());
        json.field("mtx_mb", file_mb);
        json.field("scsr_mb", scsr_mb);
        json.field("reps", reps);
        json.field("istream_parse_seconds", istream_med);
        json.field("from_chars_parse_seconds", from_chars_med);
        json.field("parse_speedup_vs_istream", speedup);
        json.field("convert_seconds", convert_med);
        json.field("convert_mb_per_second", convert_mb_s);
        json.field("load_seconds", load_med);
        json.field("load_mb_per_second", load_mb_s);
        json.field("calibration_seconds", calib);
        json.field("convert_mb_per_calibration", convert_mb_s * calib);
        writeMachineBlock(json);
        json.endObject();
        std::ofstream out(path);
        if (!out)
            fatal("SPARCH_BENCH_JSON: cannot write '", path, "'");
        out << json.str() << "\n";
    }

    std::remove(mtx.c_str());
    std::remove(scsr.c_str());
    return 0;
}
