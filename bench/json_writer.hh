/**
 * @file
 * Minimal JSON emitter shared by the bench harness.
 *
 * Backs the SPARCH_BENCH_JSON output mode of bench_common.hh and the
 * BENCH_simulator.json perf-trajectory entries bench_hotpath emits for
 * scripts/bench_trajectory.sh. Deliberately write-only: objects and
 * arrays are streamed in construction order, strings are escaped, and
 * doubles round-trip (max_digits10) so a checked-in trajectory diff is
 * meaningful.
 */

#ifndef SPARCH_BENCH_JSON_WRITER_HH
#define SPARCH_BENCH_JSON_WRITER_HH

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace sparch
{
namespace bench
{

/** Streaming JSON writer; emits one value tree into a string. */
class JsonWriter
{
  public:
    JsonWriter() { out_.precision(std::numeric_limits<double>::max_digits10); }

    void
    beginObject()
    {
        comma();
        out_ << '{';
        first_.push_back(true);
    }

    void
    endObject()
    {
        out_ << '}';
        first_.pop_back();
    }

    void
    beginArray()
    {
        comma();
        out_ << '[';
        first_.push_back(true);
    }

    void
    endArray()
    {
        out_ << ']';
        first_.pop_back();
    }

    /** Emit `"name":` inside the current object. */
    void
    key(const std::string &name)
    {
        comma();
        string(name);
        out_ << ':';
        // The value that follows must not emit its own comma.
        pending_value_ = true;
    }

    void
    value(const std::string &v)
    {
        comma();
        string(v);
    }

    void
    value(const char *v)
    {
        value(std::string(v));
    }

    void
    value(double v)
    {
        comma();
        out_ << v;
    }

    void
    value(std::uint64_t v)
    {
        comma();
        out_ << v;
    }

    void
    value(int v)
    {
        comma();
        out_ << v;
    }

    void
    value(unsigned v)
    {
        comma();
        out_ << v;
    }

    void
    value(bool v)
    {
        comma();
        out_ << (v ? "true" : "false");
    }

    /** Convenience: key + scalar value in one call. */
    template <typename T>
    void
    field(const std::string &name, const T &v)
    {
        key(name);
        value(v);
    }

    std::string str() const { return out_.str(); }

  private:
    void
    comma()
    {
        if (pending_value_) {
            pending_value_ = false;
            return;
        }
        if (!first_.empty()) {
            if (!first_.back())
                out_ << ',';
            first_.back() = false;
        }
    }

    void
    string(const std::string &s)
    {
        out_ << '"';
        for (const char c : s) {
            switch (c) {
            case '"':
                out_ << "\\\"";
                break;
            case '\\':
                out_ << "\\\\";
                break;
            case '\n':
                out_ << "\\n";
                break;
            case '\r':
                out_ << "\\r";
                break;
            case '\t':
                out_ << "\\t";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    out_ << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
                         << "0123456789abcdef"[c & 0xf];
                } else {
                    out_ << c;
                }
            }
        }
        out_ << '"';
    }

    std::ostringstream out_;
    std::vector<bool> first_;
    bool pending_value_ = false;
};

} // namespace bench
} // namespace sparch

#endif // SPARCH_BENCH_JSON_WRITER_HH
