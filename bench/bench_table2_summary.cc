/**
 * @file
 * Table II: SpArch vs OuterSPACE on area, power and memory bandwidth
 * utilization. Paper: 28.49 mm^2 vs 87 mm^2, 9.26 W vs 12.39 W,
 * 68.6% vs 48.3% bandwidth utilization at 128 GB/s HBM.
 *
 * The 20 utilization measurements fan out across the batch driver.
 */

#include <iostream>

#include "baselines/outerspace_model.hh"
#include "bench/bench_common.hh"
#include "common/table_printer.hh"
#include "driver/workload.hh"
#include "model/energy_model.hh"

int
main()
{
    using namespace sparch;
    using namespace sparch::bench;

    // Measure bandwidth utilization over the benchmark suite.
    const std::uint64_t target = targetNnz(40000);
    driver::BatchRunner runner = makeRunner();
    for (const auto &spec : benchmarkSuite()) {
        runner.add("table-I", SpArchConfig{},
                   driver::suiteWorkload(spec.name, target));
    }
    const std::vector<driver::BatchRecord> records =
        bench::runBatch(runner);
    double util_sum = 0.0;
    for (const driver::BatchRecord &r : records)
        util_sum += r.sim.bandwidthUtilization;
    const double measured_util =
        util_sum / static_cast<double>(records.size());

    const EnergyModel model;
    TablePrinter table("Table II: comparison with OuterSPACE");
    table.header({"metric", "SpArch (this repo)", "SpArch (paper)",
                  "OuterSPACE (paper)"});
    table.row({"Technology", "40nm (modeled)", "40nm", "32nm"});
    table.row({"Area",
               TablePrinter::num(model.area().total()) + " mm^2",
               "28.49 mm^2", "87 mm^2"});
    table.row({"Power",
               TablePrinter::num(model.typicalPower().total()) + " W",
               "9.26 W", "12.39 W"});
    table.row({"DRAM", "HBM@128GB/s", "HBM@128GB/s", "HBM@128GB/s"});
    table.row({"Bandwidth Utilization",
               TablePrinter::num(100.0 * measured_util, 1) + " %",
               "68.6 %", "48.3 %"});
    table.print(std::cout);
    return 0;
}
