#!/usr/bin/env python3
"""sparch-audit: project-specific static analysis for the SpArch simulator.

Enforces invariants the compiler cannot see:

  nondet-in-keyed          no nondeterminism sources in code that feeds
                           result-cache keys or emits CSV (src/driver,
                           src/cli): rand/time/chrono-clock calls,
                           iteration over unordered containers, and
                           pointer-keyed ordered containers.
  alloc-in-hot             no heap-allocation calls (new-expressions
                           except placement new, the malloc family,
                           make_unique/make_shared) inside functions
                           annotated SPARCH_HOT.
  schedule-point-coverage  every mutex/condition-variable site in
                           src/driver, src/exec and src/check sits in a
                           function that contains SPARCH_SCHEDULE_POINT
                           or carries an explicit allow annotation.
  nolint-reason            every NOLINT marker names specific checks
                           and carries a written justification.
  raw-mmap                 no raw mmap/munmap/mremap/msync calls
                           anywhere but src/matrix/mmap_file.cc, the
                           RAII wrapper that owns every mapping (a raw
                           call elsewhere is a leak or double-unmap
                           waiting to happen).
  config-field-coverage    the field registries (*.def) and the config
                           structs cover each other exactly, and every
                           config enum value has a registered CLI
                           spelling.
  bad-annotation           malformed sparch-audit annotations (unknown
                           rule id, empty reason).

Annotation grammar (all inside comments):

  // sparch-audit: allow(<rule>, <reason>)
        suppress <rule> on this line and the next; for
        schedule-point-coverage, anywhere in the enclosing function.
  // sparch-audit: allow-file(<rule>, <reason>)
        suppress <rule> for the whole file.
  // sparch-audit: not-serialized(<member>, <reason>)
        (in record_fields.def) declare a record member that
        deliberately never serializes.
  // expect(<rule>)
        (fixture mode only) assert a violation of <rule> on this line.

The analysis is token-level by design: it runs on a bare toolchain
with no compiler plugins. When libclang python bindings are available
they are used for precise function extents; otherwise a brace-matching
fallback mirrors scripts/lint.sh's graceful degrade. Exit status: 0
clean, 1 violations (or fixture mismatch), 2 usage error.
"""

import argparse
import os
import re
import sys

RULES = {
    "nondet-in-keyed": "nondeterminism source in keyed/CSV-emitting code",
    "alloc-in-hot": "heap allocation inside a SPARCH_HOT function",
    "schedule-point-coverage": "synchronization site without a schedule point",
    "nolint-reason": "NOLINT without specific checks and a justification",
    "config-field-coverage": "field registry and struct disagree",
    "raw-mmap": "raw mmap call outside the MappedFile wrapper",
    "bad-annotation": "malformed sparch-audit annotation",
}

# Path scopes for the tree scan (fixture mode ignores these).
KEYED_SCOPE = ("src/driver", "src/cli")
SCHEDULE_SCOPE = ("src/driver", "src/exec", "src/check")
# The one file allowed to touch the mmap syscall family directly.
MMAP_OWNER = "src/matrix/mmap_file.cc"

SOURCE_EXTS = (".cc", ".hh", ".cpp", ".hpp", ".h")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


# ---------------------------------------------------------------- lexing


def split_code_and_comments(text):
    """Blank out comments and string/char-literal contents.

    Returns (code, comments): `code` is the source with every comment
    character and every literal's contents replaced by spaces (line
    structure preserved), `comments` maps line number -> concatenated
    comment text on that line.
    """
    code = []
    comments = {}
    i, n, line = 0, len(text), 1

    def note(ln, s):
        comments[ln] = comments.get(ln, "") + s

    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            note(line, text[i:j])
            code.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            chunk = text[i:j]
            for k, part in enumerate(chunk.split("\n")):
                note(line + k, part)
            code.append(re.sub(r"[^\n]", " ", chunk))
            line += chunk.count("\n")
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            out = [quote]
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    out.append("  ")
                    j += 2
                elif text[j] == "\n":  # unterminated; bail at newline
                    break
                else:
                    out.append(" ")
                    j += 1
            if j < n and text[j] == quote:
                out.append(quote)
                j += 1
            code.append("".join(out))
            i = j
        else:
            code.append(c)
            if c == "\n":
                line += 1
            i += 1
    return "".join(code), comments


def line_starts(code):
    starts = [0]
    for i, c in enumerate(code):
        if c == "\n":
            starts.append(i + 1)
    return starts


def line_of(offset, starts):
    lo, hi = 0, len(starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if starts[mid] <= offset:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


# ----------------------------------------------------------- annotations

ALLOW_RE = re.compile(
    r"sparch-audit:\s*(allow|allow-file|not-serialized)\s*"
    r"\(\s*([^,()]*?)\s*(?:,\s*([^()]*?)\s*)?\)")
EXPECT_RE = re.compile(r"expect\(\s*([a-z-]+)\s*\)")
# An annotation keyword that never reaches a well-formed open paren —
# e.g. `sparch-audit: allow schedule-point-coverage` — is malformed.
ANNOTATION_STEM_RE = re.compile(r"sparch-audit:\s*([a-z-]*)")


class Annotations:
    """Parsed sparch-audit annotations of one file."""

    def __init__(self):
        self.allow = {}  # rule -> set of line numbers
        self.allow_file = set()  # rules suppressed file-wide
        self.not_serialized = {}  # member -> reason
        self.bad = []  # (line, message)

    def allows(self, rule, lineno):
        if rule in self.allow_file:
            return True
        lines = self.allow.get(rule, ())
        # An allow on line L covers L and L+1 (comment-above style).
        return lineno in lines or lineno - 1 in lines

    def allow_lines(self, rule):
        return self.allow.get(rule, set())


def parse_annotations(comments, joined_comment_text=None):
    ann = Annotations()
    for lineno in sorted(comments):
        text = comments[lineno]
        if "sparch-audit:" not in text:
            continue
        matched = False
        for m in ALLOW_RE.finditer(text):
            matched = True
            kind, arg, reason = m.group(1), m.group(2), m.group(3)
            reason = (reason or "").strip()
            if kind in ("allow", "allow-file"):
                if arg not in RULES:
                    ann.bad.append(
                        (lineno, "unknown rule '%s' in %s()" %
                         (arg, kind)))
                    continue
                if not reason:
                    ann.bad.append(
                        (lineno,
                         "%s(%s) needs a non-empty reason" %
                         (kind, arg)))
                    continue
                if kind == "allow":
                    ann.allow.setdefault(arg, set()).add(lineno)
                else:
                    ann.allow_file.add(arg)
            else:  # not-serialized
                if not arg or not reason:
                    ann.bad.append(
                        (lineno, "not-serialized needs a member and "
                                 "a reason"))
                    continue
                ann.not_serialized[arg] = reason
        if not matched:
            stem = ANNOTATION_STEM_RE.search(text)
            ann.bad.append(
                (lineno, "malformed sparch-audit annotation '%s'" %
                 (stem.group(1) if stem else "")))
    return ann


def merge_multiline_annotations(comments):
    """Join run-on comment blocks so annotations may wrap lines.

    A `sparch-audit:` comment whose open paren is not closed on its
    own line continues onto following comment lines; the joined text
    is credited to the LAST line of the block, so an allow() written
    as a comment block directly above a statement covers it.
    """
    merged = dict(comments)
    for lineno in sorted(comments):
        text = merged.get(lineno)
        if text is None or "sparch-audit:" not in text:
            continue
        last = lineno
        while text.count("(") > text.count(")"):
            nxt = merged.pop(last + 1, None)
            if nxt is None:
                break
            text += " " + re.sub(r"^\s*(//|\*)\s?", "", nxt)
            last += 1
        if last != lineno:
            merged.pop(lineno, None)
        merged[last] = text
    return merged


# ------------------------------------------------------ function extents


# Build directory holding compile_commands.json (set via -p). When
# present and libclang is importable, each file is parsed with its
# real compile flags instead of the -std=c++20 -Isrc default.
BUILD_DIR = None


def compile_args_for(ci, path):
    if BUILD_DIR is None:
        return ["-std=c++20", "-Isrc"]
    try:
        db = ci.CompilationDatabase.fromDirectory(BUILD_DIR)
        cmds = db.getCompileCommands(os.path.abspath(path))
        if cmds:
            # Drop the compiler argv[0] and the source file itself;
            # libclang wants only the flags.
            args = list(cmds[0].arguments)[1:]
            return [a for a in args
                    if os.path.abspath(a) != os.path.abspath(path)]
    except Exception:
        pass
    return ["-std=c++20", "-Isrc"]


def libclang_function_extents(path):
    """Precise extents via libclang, or None to use the fallback."""
    try:
        import clang.cindex as ci  # noqa: F401
    except Exception:
        return None
    try:
        index = ci.Index.create()
        tu = index.parse(path, args=compile_args_for(ci, path))
        extents = []

        def walk(cur):
            if cur.kind in (ci.CursorKind.FUNCTION_DECL,
                            ci.CursorKind.CXX_METHOD,
                            ci.CursorKind.CONSTRUCTOR,
                            ci.CursorKind.DESTRUCTOR,
                            ci.CursorKind.LAMBDA_EXPR) and \
                    cur.is_definition():
                extents.append((cur.extent.start.line,
                                cur.extent.end.line))
            for child in cur.get_children():
                walk(child)

        walk(tu.cursor)
        return extents or None
    except Exception:
        return None


def fallback_function_extents(code, starts):
    """Brace-matched function-body extents, repo-style heuristic.

    A definition is a column-0 line containing an identifier and '('
    (the repo writes the return type on its own line and the qualified
    name at column 0), followed by a '{' at column 0. Returns a list
    of (first_line, last_line) body extents, outermost only.
    """
    extents = []
    lines = code.split("\n")
    i = 0
    while i < len(lines):
        line = lines[i]
        if re.match(r"^[A-Za-z_~][\w:<>,~]*\s*\(", line):
            j = i
            while j < len(lines) and not lines[j].startswith("{"):
                if lines[j].startswith("}") or \
                        lines[j].startswith("#") or \
                        (lines[j].endswith(";") and
                         "{" not in lines[j]):
                    j = -1
                    break
                j += 1
            if j < 0 or j >= len(lines):
                i += 1
                continue
            depth = 0
            end = j
            for k in range(j, len(lines)):
                depth += lines[k].count("{") - lines[k].count("}")
                if depth <= 0:
                    end = k
                    break
            extents.append((i + 1, end + 1))
            i = end + 1
        else:
            i += 1
    return extents


def function_extents(path, code, starts):
    extents = libclang_function_extents(path)
    if extents is None:
        extents = fallback_function_extents(code, starts)
    return extents


def enclosing_extent(extents, lineno):
    best = None
    for start, end in extents:
        if start <= lineno <= end:
            if best is None or start > best[0]:
                best = (start, end)
    return best


# ------------------------------------------------------------ line rules

NONDET_PATTERNS = [
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand() call"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\b(?:std::)?time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() call"),
    (re.compile(r"\b(?:system_clock|steady_clock|"
                r"high_resolution_clock)\s*::\s*now\b"),
     "wall-clock read"),
    (re.compile(r"\bstd::(?:map|set)\s*<\s*[^,<>]*\*\s*[,>]"),
     "pointer-keyed ordered container (iteration order depends on "
     "allocation addresses)"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*"
    r"(\w+)\s*[;{=(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*(?:\w+\.)*(\w+)\s*\)")

ALLOC_PATTERNS = [
    (re.compile(r"\bnew\b(?!\s*\()"), "new-expression"),
    (re.compile(r"\b(?:std::)?(?:malloc|calloc|realloc|aligned_alloc|"
                r"strdup)\s*\("), "malloc-family call"),
    (re.compile(r"\bmake_(?:unique|shared)\s*<"),
     "make_unique/make_shared call"),
]

SYNC_SITE_RE = re.compile(
    r"\b(?:lock_guard|unique_lock|scoped_lock)\s*<|"
    r"\.\s*wait(?:_for|_until)?\s*\(")

NOLINT_RE = re.compile(r"NOLINT(?:NEXTLINE|BEGIN|END)?\b(\([^)]*\))?")

RAW_MMAP_RE = re.compile(r"\b(?:mmap|mmap64|munmap|mremap|msync)\s*\(")


def check_nondet(path, code, starts, ann, out):
    unordered = set(UNORDERED_DECL_RE.findall(code))
    for lineno, line in enumerate(code.split("\n"), start=1):
        for pat, what in NONDET_PATTERNS:
            if pat.search(line) and not ann.allows(
                    "nondet-in-keyed", lineno):
                out.append(Violation(
                    path, lineno, "nondet-in-keyed",
                    what + " in keyed/CSV-emitting code"))
        if unordered:
            m = RANGE_FOR_RE.search(line)
            if m and m.group(1).rstrip("_") in {
                    u.rstrip("_") for u in unordered}:
                if not ann.allows("nondet-in-keyed", lineno):
                    out.append(Violation(
                        path, lineno, "nondet-in-keyed",
                        "iteration over unordered container '%s' "
                        "(element order is unspecified)" %
                        m.group(1)))


def check_alloc_in_hot(path, code, starts, ann, out):
    lines = code.split("\n")
    for m in re.finditer(r"\bSPARCH_HOT\b", code):
        if lines[line_of(m.start(), starts) - 1].lstrip()\
                .startswith("#"):
            continue  # the macro's own #define, not an annotation
        start = m.end()
        open_brace = code.find("{", start)
        if open_brace < 0:
            continue
        depth, end = 0, open_brace
        for i in range(open_brace, len(code)):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        first = line_of(open_brace, starts)
        last = line_of(end, starts)
        for lineno in range(first, last + 1):
            line = lines[lineno - 1]
            for pat, what in ALLOC_PATTERNS:
                if pat.search(line) and not ann.allows(
                        "alloc-in-hot", lineno):
                    out.append(Violation(
                        path, lineno, "alloc-in-hot",
                        what + " inside a SPARCH_HOT function"))


def check_schedule_points(path, code, starts, ann, out):
    extents = None
    lines = code.split("\n")
    for lineno, line in enumerate(lines, start=1):
        if not SYNC_SITE_RE.search(line):
            continue
        if ann.allows("schedule-point-coverage", lineno):
            continue
        if extents is None:
            extents = function_extents(path, code, starts)
        ext = enclosing_extent(extents, lineno)
        if ext is None:
            # Member declarations etc.; only flag sites inside bodies.
            continue
        body = "\n".join(lines[ext[0] - 1:ext[1]])
        if "SPARCH_SCHEDULE_POINT" in body:
            continue
        if any(ext[0] <= al <= ext[1] for al in
               ann.allow_lines("schedule-point-coverage")):
            continue
        out.append(Violation(
            path, lineno, "schedule-point-coverage",
            "synchronization site in a function with no "
            "SPARCH_SCHEDULE_POINT (add one, or annotate: "
            "// sparch-audit: allow(schedule-point-coverage, why))"))


def check_raw_mmap(path, code, starts, ann, out):
    for lineno, line in enumerate(code.split("\n"), start=1):
        if RAW_MMAP_RE.search(line) and not ann.allows(
                "raw-mmap", lineno):
            out.append(Violation(
                path, lineno, "raw-mmap",
                "raw mmap-family call outside %s; hold a MappedFile "
                "instead so unmapping cannot be forgotten or doubled" %
                MMAP_OWNER))


def check_nolint(path, comments, ann, out):
    for lineno in sorted(comments):
        # Fixture expect() markers share the line; they are not part
        # of the justification.
        text = EXPECT_RE.sub("", comments[lineno])
        for m in NOLINT_RE.finditer(text):
            if ann.allows("nolint-reason", lineno):
                continue
            checks = m.group(1)
            if not checks or not checks.strip("()").strip():
                out.append(Violation(
                    path, lineno, "nolint-reason",
                    "NOLINT must name the suppressed checks, e.g. "
                    "NOLINT(bugprone-foo): reason"))
                continue
            rest = text[m.end():].lstrip(" :-")
            if not rest.strip():
                out.append(Violation(
                    path, lineno, "nolint-reason",
                    "NOLINT%s carries no justification" % checks))


# ----------------------------------------------- config-field coverage


def strip_comments(text):
    return split_code_and_comments(text)[0]


def struct_members(header_text, struct_name):
    """Data-member names of a struct, token-level."""
    code = strip_comments(header_text)
    m = re.search(r"\bstruct\s+%s\b[^;{]*\{" % re.escape(struct_name),
                  code)
    if not m:
        return None
    depth, start, end = 0, m.end() - 1, len(code)
    for i in range(m.end() - 1, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                end = i
                break
    body = code[start + 1:end]
    # Drop nested braces (member-function bodies, nested types).
    flat, depth = [], 0
    for c in body:
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
        elif depth == 0:
            flat.append(c)
    members = []
    for stmt in "".join(flat).split(";"):
        stmt = stmt.strip()
        if not stmt or "(" in stmt or stmt.startswith(
                ("using ", "typedef ", "static ", "friend ",
                 "enum ", "struct ", "class ", "public", "private",
                 "protected")):
            continue
        dm = re.search(r"(\w+)\s*(?:=.*|\{.*\})?$", stmt)
        if dm:
            members.append(dm.group(1))
    return members


def enum_values(header_text, enum_name):
    code = strip_comments(header_text)
    m = re.search(r"\benum\s+class\s+%s\b[^{]*\{([^}]*)\}" %
                  re.escape(enum_name), code)
    if not m:
        return None
    values = []
    for piece in m.group(1).split(","):
        vm = re.match(r"\s*(\w+)", piece)
        if vm:
            values.append(vm.group(1))
    return values


def def_entries(def_text, macro):
    """(line, [args]) for each expansion of one registry macro."""
    code = strip_comments(def_text)
    # Drop preprocessor lines: the default-empty #define of each macro
    # at the top of a .def is not an entry.
    code = "\n".join("" if line.lstrip().startswith("#") else line
                     for line in code.split("\n"))
    entries = []
    for m in re.finditer(r"\b%s\s*\(" % re.escape(macro), code):
        depth, j = 0, m.end() - 1
        for i in range(m.end() - 1, len(code)):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    j = i
                    break
        args_text = code[m.end():j]
        # Split on top-level commas only (KEY_EXEMPT(...) nests).
        args, depth, cur = [], 0, []
        for c in args_text:
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            if c == "," and depth == 0:
                args.append("".join(cur).strip())
                cur = []
            else:
                cur.append(c)
        args.append("".join(cur).strip())
        lineno = code[:m.start()].count("\n") + 1
        entries.append((lineno, [re.sub(r"\s+", " ", a)
                                 for a in args]))
    return entries


def check_field_coverage_pair(def_path, def_text, hh_path, hh_text,
                              field_macros, struct_name, member_arg,
                              skip_members, out):
    """Generic two-way check: every struct member registered, every
    registry entry naming a live member."""
    members = struct_members(hh_text, struct_name)
    if members is None:
        out.append(Violation(hh_path, 1, "config-field-coverage",
                             "struct %s not found" % struct_name))
        return
    hh_ann = parse_annotations(
        merge_multiline_annotations(
            split_code_and_comments(hh_text)[1]))
    registered = set()
    for macro in field_macros:
        for lineno, args in def_entries(def_text, macro):
            if len(args) <= member_arg:
                continue
            path = args[member_arg]
            member = path.split(".")[0]
            registered.add(member)
            # A dotted path must start at a live member (the leaf is
            # validated against the nested struct separately); a plain
            # path must BE a live member.
            if member not in members:
                out.append(Violation(
                    def_path, lineno, "config-field-coverage",
                    "entry names '%s' which is not a member of %s" %
                    (path, struct_name)))
    hh_code, _ = split_code_and_comments(hh_text)
    for member in members:
        if member in skip_members or member in registered:
            continue
        decl = re.search(r"^.*\b%s\b\s*(?:=|;|\{)" %
                         re.escape(member), hh_code, re.M)
        lineno = (hh_code[:decl.start()].count("\n") + 1
                  if decl else 1)
        if hh_ann.allows("config-field-coverage", lineno):
            continue
        out.append(Violation(
            hh_path, lineno, "config-field-coverage",
            "member '%s' of %s has no registry entry in %s" %
            (member, struct_name, os.path.basename(def_path))))


def read(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


def check_tree_field_coverage(root, out):
    cfg_def_path = os.path.join(root, "src/core/config_fields.def")
    mem_def_path = os.path.join(root, "src/mem/memory_fields.def")
    rec_def_path = os.path.join(root, "src/driver/record_fields.def")
    cfg_hh = os.path.join(root, "src/core/sparch_config.hh")
    tree_hh = os.path.join(root, "src/hw/merge_tree.hh")
    mem_hh = os.path.join(root, "src/mem/memory_model.hh")
    rec_hh = os.path.join(root, "src/driver/batch_runner.hh")
    sim_hh = os.path.join(root, "src/core/sparch_simulator.hh")
    for p in (cfg_def_path, mem_def_path, rec_def_path, cfg_hh,
              tree_hh, mem_hh, rec_hh, sim_hh):
        if not os.path.exists(p):
            out.append(Violation(p, 1, "config-field-coverage",
                                 "registry input missing"))
            return
    cfg_def, mem_def, rec_def = (read(cfg_def_path),
                                 read(mem_def_path),
                                 read(rec_def_path))

    # SpArchConfig <-> config_fields.def (the memory member is the
    # SPARCH_CONFIG_MEMORY() slot).
    check_field_coverage_pair(
        cfg_def_path, cfg_def, cfg_hh, read(cfg_hh),
        ["SPARCH_CONFIG_FIELD"], "SpArchConfig", 2,
        {"memory"}, out)
    if not def_entries(cfg_def, "SPARCH_CONFIG_MEMORY"):
        out.append(Violation(cfg_def_path, 1, "config-field-coverage",
                             "SPARCH_CONFIG_MEMORY() slot missing"))

    # MergeTreeConfig members appear as mergeTree.<member> paths.
    tree_members = struct_members(read(tree_hh), "MergeTreeConfig")
    paths = {args[2] for _, args in
             def_entries(cfg_def, "SPARCH_CONFIG_FIELD")
             if len(args) > 2}
    for member in tree_members or []:
        if ("mergeTree." + member) not in paths:
            out.append(Violation(
                tree_hh, 1, "config-field-coverage",
                "MergeTreeConfig member '%s' has no mergeTree.* "
                "entry in config_fields.def" % member))

    # Memory blocks <-> memory_fields.def.
    mem_text = read(mem_hh)
    for macro, struct in (("SPARCH_MEM_FIELD_HBM", "HbmConfig"),
                          ("SPARCH_MEM_FIELD_BANKED",
                           "BankedDramConfig"),
                          ("SPARCH_MEM_FIELD_IDEAL", "IdealConfig")):
        check_field_coverage_pair(
            mem_def_path, mem_def, mem_hh, mem_text, [macro],
            struct, 2, set(), out)
    kinds = {args[0] for _, args in
             def_entries(mem_def, "SPARCH_MEM_KIND")}
    for value in enum_values(mem_text, "MemoryKind") or []:
        if value not in kinds:
            out.append(Violation(
                mem_hh, 1, "config-field-coverage",
                "MemoryKind::%s has no SPARCH_MEM_KIND spelling" %
                value))

    # Config enums <-> SPARCH_CONFIG_ENUM_VALUE.
    cfg_text = read(cfg_hh)
    enum_entries = def_entries(cfg_def, "SPARCH_CONFIG_ENUM_VALUE")
    for enum in ("ReplacementPolicy", "SchedulerKind"):
        spelled = {args[1] for _, args in enum_entries
                   if args and args[0] == enum}
        for value in enum_values(cfg_text, enum) or []:
            if value not in spelled:
                out.append(Violation(
                    cfg_hh, 1, "config-field-coverage",
                    "%s::%s has no SPARCH_CONFIG_ENUM_VALUE "
                    "spelling" % (enum, value)))

    # Record schema <-> BatchRecord/SpArchResult members.
    rec_ann = parse_annotations(
        merge_multiline_annotations(
            split_code_and_comments(rec_def)[1]))
    rec_entries = def_entries(rec_def, "SPARCH_RECORD_FIELD")
    rec_members = struct_members(read(rec_hh), "BatchRecord") or []
    sim_members = struct_members(read(sim_hh), "SpArchResult") or []
    covered = {args[2] for _, args in rec_entries if len(args) > 2}
    exempt = set(rec_ann.not_serialized)
    for member in rec_members:
        if member == "sim" or member in exempt:
            continue
        if member not in covered:
            out.append(Violation(
                rec_def_path, 1, "config-field-coverage",
                "BatchRecord member '%s' is neither serialized nor "
                "declared not-serialized" % member))
    for member in sim_members:
        path = "sim." + member
        if path in covered or path in exempt:
            continue
        out.append(Violation(
            rec_def_path, 1, "config-field-coverage",
            "SpArchResult member '%s' is neither serialized nor "
            "declared not-serialized" % path))
    for lineno, args in rec_entries:
        if len(args) < 3:
            continue
        member = args[2]
        if "." in member:
            head, leaf = member.split(".", 1)
            ok = head == "sim" and leaf in sim_members
        else:
            ok = member in rec_members
        if not ok:
            out.append(Violation(
                rec_def_path, lineno, "config-field-coverage",
                "entry names '%s' which is not a record member" %
                member))
    for lineno, _ in enum_entries:
        pass  # line info only used above
    for _, bad in ((0, b) for b in rec_ann.bad):
        out.append(Violation(rec_def_path, bad[0], "bad-annotation",
                             bad[1]))


# --------------------------------------------------------------- drivers


def scan_file(path, rel, fixture_mode, out):
    text = read(path)
    code, comments = split_code_and_comments(text)
    comments = merge_multiline_annotations(comments)
    starts = line_starts(code)
    ann = parse_annotations(comments)
    for lineno, message in ann.bad:
        out.append(Violation(rel, lineno, "bad-annotation", message))

    in_keyed = fixture_mode or rel.replace(os.sep, "/").startswith(
        KEYED_SCOPE)
    in_sched = fixture_mode or rel.replace(os.sep, "/").startswith(
        SCHEDULE_SCOPE)
    if in_keyed:
        check_nondet(rel, code, starts, ann, out)
    check_alloc_in_hot(rel, code, starts, ann, out)
    if in_sched:
        check_schedule_points(rel, code, starts, ann, out)
    if rel.replace(os.sep, "/") != MMAP_OWNER:
        check_raw_mmap(rel, code, starts, ann, out)
    check_nolint(rel, comments, ann, out)
    return comments


def dedupe(violations):
    seen, unique = set(), []
    for v in violations:
        key = (v.path, v.line, v.rule, v.message)
        if key not in seen:
            seen.add(key)
            unique.append(v)
    return unique


def run_tree(root):
    out = []
    for base, dirs, files in os.walk(os.path.join(root, "src")):
        dirs.sort()
        for name in sorted(files):
            if not name.endswith(SOURCE_EXTS):
                continue
            path = os.path.join(base, name)
            scan_file(path, os.path.relpath(path, root), False, out)
    check_tree_field_coverage(root, out)
    return dedupe(out)


def run_fixtures(fixtures_dir):
    """Scan fixture files and compare against their expect() markers."""
    out = []
    expected = set()
    for base, dirs, files in os.walk(fixtures_dir):
        dirs.sort()
        for name in sorted(files):
            path = os.path.join(base, name)
            rel = os.path.relpath(path, fixtures_dir)
            if name.endswith(SOURCE_EXTS):
                comments = scan_file(path, rel, True, out)
            elif name.endswith(".def") or name.endswith(".hh.in"):
                comments = merge_multiline_annotations(
                    split_code_and_comments(read(path))[1])
            else:
                continue
            for lineno in sorted(comments):
                for m in EXPECT_RE.finditer(comments[lineno]):
                    expected.add((rel, lineno, m.group(1)))

    # Coverage fixtures: <name>_fields.def paired with <name>_config.hh;
    # the struct under test is the first struct in the header.
    for base, dirs, files in os.walk(fixtures_dir):
        for name in sorted(files):
            if not name.endswith("_fields.def"):
                continue
            def_path = os.path.join(base, name)
            hh_path = os.path.join(
                base, name[:-len("_fields.def")] + "_config.hh")
            if not os.path.exists(hh_path):
                continue
            hh_text = read(hh_path)
            sm = re.search(r"\bstruct\s+(\w+)",
                           strip_comments(hh_text))
            if not sm:
                continue
            pair_out = []
            check_field_coverage_pair(
                os.path.relpath(def_path, fixtures_dir), read(def_path),
                os.path.relpath(hh_path, fixtures_dir), hh_text,
                ["SPARCH_FIXTURE_FIELD"], sm.group(1), 2, set(),
                pair_out)
            out.extend(pair_out)

    out = dedupe(out)
    actual = {(v.path, v.line, v.rule) for v in out}
    ok = True
    for miss in sorted(expected - actual):
        print("MISSING %s:%d: expected [%s] was not reported" % miss)
        ok = False
    for extra in sorted(actual - expected):
        v = next(v for v in out
                 if (v.path, v.line, v.rule) == extra)
        print("UNEXPECTED %s" % v)
        ok = False
    print("fixtures: %d expected, %d reported, %s" %
          (len(expected), len(actual), "OK" if ok else "MISMATCH"))
    return 0 if ok else 1


def main(argv):
    parser = argparse.ArgumentParser(
        prog="sparch_audit",
        description="SpArch project-specific static analysis")
    parser.add_argument("--root", default=".",
                        help="repository root to scan")
    parser.add_argument("--fixtures",
                        help="run in fixture mode over this directory")
    parser.add_argument("-p", "--build-dir", dest="build_dir",
                        help="build tree with compile_commands.json "
                             "(used for real compile flags in "
                             "libclang mode)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.build_dir:
        global BUILD_DIR
        BUILD_DIR = args.build_dir

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-24s %s" % (rule, RULES[rule]))
        return 0

    try:
        import clang.cindex  # noqa: F401
        mode = "libclang"
    except Exception:
        mode = "token-level (libclang python bindings not found; "\
               "analysis degrades gracefully like scripts/lint.sh)"
    print("sparch-audit: %s" % mode, file=sys.stderr)

    if args.fixtures:
        if not os.path.isdir(args.fixtures):
            print("fixtures directory '%s' not found" % args.fixtures,
                  file=sys.stderr)
            return 2
        return run_fixtures(args.fixtures)

    if not os.path.isdir(os.path.join(args.root, "src")):
        print("no src/ under root '%s'" % args.root, file=sys.stderr)
        return 2
    violations = run_tree(args.root)
    for v in violations:
        print(v)
    print("sparch-audit: %d violation(s)" % len(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
