/**
 * @file
 * Merge-scheduler playground.
 *
 * Condenses a matrix (Section II-B), builds the merge plan under each
 * scheduling policy (Section II-C), and prints the round structure and
 * traffic proxies so the effect of the Huffman tree scheduler is
 * visible directly — including the paper's own Fig. 8 example.
 *
 * The three policies' plans are built concurrently on the driver's
 * work-stealing thread pool; output stays in policy order via futures.
 *
 * Usage: scheduler_playground [rows] [nnz] [ways]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <utility>
#include <vector>

#include "core/condensed_matrix.hh"
#include "core/huffman_scheduler.hh"
#include "driver/thread_pool.hh"
#include "matrix/rmat.hh"

namespace
{

void
describePlan(const char *name, const sparch::MergePlan &plan)
{
    using namespace sparch;
    std::printf("\n%s scheduler: %zu rounds\n", name,
                plan.rounds.size());
    std::printf("  sum of internal node weights (partial-result DRAM "
                "proxy): %llu\n",
                static_cast<unsigned long long>(plan.internalWeight()));
    std::printf("  total weight of all nodes (Fig. 8 metric):        "
                " %llu\n",
                static_cast<unsigned long long>(plan.totalWeight()));
    const std::size_t show = std::min<std::size_t>(5,
                                                   plan.rounds.size());
    for (std::size_t i = 0; i < show; ++i) {
        const MergeNode &node = plan.nodes[plan.rounds[i]];
        unsigned fresh = 0;
        for (auto c : node.children)
            fresh += plan.nodes[c].isLeaf ? 1 : 0;
        std::printf("  round %zu: %zu inputs (%u fresh, %zu stored), "
                    "merged weight %llu\n",
                    i, node.children.size(), fresh,
                    node.children.size() - fresh,
                    static_cast<unsigned long long>(node.weight));
    }
    if (plan.rounds.size() > show)
        std::printf("  ... %zu more rounds\n",
                    plan.rounds.size() - show);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sparch;

    // First: the paper's Fig. 8 worked example.
    std::printf("== Fig. 8 example: leaves "
                "{15,15,13,12,9,7,3,2,2,2,2,2} ==\n");
    const std::vector<std::uint64_t> fig8 = {15, 15, 13, 12, 9, 7,
                                             3,  2,  2,  2,  2, 2};
    for (unsigned ways : {2u, 4u}) {
        const auto plan =
            buildMergePlan(fig8, ways, SchedulerKind::Huffman);
        std::printf("%u-way Huffman total node weight: %llu "
                    "(paper: %s)\n",
                    ways,
                    static_cast<unsigned long long>(plan.totalWeight()),
                    ways == 2 ? "354" : "228");
    }

    // Then a real matrix.
    const Index rows =
        argc > 1 ? static_cast<Index>(std::strtoul(argv[1], nullptr,
                                                   10))
                 : 4096;
    const Index edge_factor =
        argc > 2 ? static_cast<Index>(std::strtoul(argv[2], nullptr,
                                                   10))
                 : 8;
    const unsigned ways =
        argc > 3 ? static_cast<unsigned>(std::strtoul(argv[3], nullptr,
                                                      10))
                 : 64;

    const CsrMatrix a = rmatGenerate(rows, edge_factor, 7);
    const CondensedMatrix condensed(a);
    std::printf("\n== R-MAT %u vertices x%u: %zu nnz ==\n", rows,
                edge_factor, a.nnz());
    std::printf("original columns: %u, condensed columns: %u "
                "(%.0fx fewer partial matrices)\n",
                a.cols(), condensed.numColumns(),
                static_cast<double>(a.cols()) /
                    condensed.numColumns());

    std::vector<std::uint64_t> weights;
    for (Index j = 0; j < condensed.numColumns(); ++j)
        weights.push_back(condensed.productWeight(j, a));

    // Build the three plans concurrently, print them in policy order.
    const std::pair<const char *, SchedulerKind> policies[] = {
        {"Huffman", SchedulerKind::Huffman},
        {"Sequential", SchedulerKind::Sequential},
        {"Random", SchedulerKind::Random}};
    driver::ThreadPool pool;
    std::vector<std::future<MergePlan>> plans;
    for (const auto &[name, kind] : policies) {
        plans.push_back(pool.submit([&weights, ways, kind = kind] {
            return buildMergePlan(weights, ways, kind);
        }));
    }
    for (std::size_t i = 0; i < plans.size(); ++i)
        describePlan(policies[i].first, plans[i].get());
    return 0;
}
