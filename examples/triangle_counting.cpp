/**
 * @file
 * Triangle counting on SpArch.
 *
 * One of the paper's motivating workloads (Section I cites Azad,
 * Buluc, Gilbert): the number of triangles in an undirected graph is
 * sum((A^2) .* A) / 6 for a symmetric 0/1 adjacency matrix. The heavy
 * kernel is the SpGEMM A^2, which we run on the simulated accelerator;
 * the element-wise mask and reduction run on the host, as they would
 * in a real deployment.
 *
 * Usage: triangle_counting [vertices] [edge_factor] [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "core/sparch_simulator.hh"
#include "matrix/rmat.hh"

namespace
{

/** Make an undirected 0/1 adjacency matrix from an R-MAT digraph. */
sparch::CsrMatrix
makeUndirectedAdjacency(sparch::Index vertices,
                        sparch::Index edge_factor, std::uint64_t seed)
{
    using namespace sparch;
    const CsrMatrix directed = rmatGenerate(vertices, edge_factor,
                                            seed);
    CooMatrix sym(vertices, vertices);
    for (Index r = 0; r < directed.rows(); ++r) {
        for (Index c : directed.rowCols(r)) {
            if (r == c)
                continue; // no self loops
            sym.add(r, c, 1.0);
            sym.add(c, r, 1.0);
        }
    }
    sym.canonicalize();
    // Binarize: duplicate edges collapsed to weight 1.
    CooMatrix unit(vertices, vertices);
    for (const auto &t : sym.triplets())
        unit.add(t.row, t.col, 1.0);
    unit.canonicalize();
    return CsrMatrix::fromCoo(unit);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sparch;

    const Index vertices =
        argc > 1 ? static_cast<Index>(std::strtoul(argv[1], nullptr,
                                                   10))
                 : 1500;
    const Index edge_factor =
        argc > 2 ? static_cast<Index>(std::strtoul(argv[2], nullptr,
                                                   10))
                 : 8;
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

    const CsrMatrix adj =
        makeUndirectedAdjacency(vertices, edge_factor, seed);
    std::printf("Graph: %u vertices, %zu directed edges\n",
                adj.rows(), adj.nnz());

    // The SpGEMM A^2 runs on the accelerator.
    SpArchSimulator sim;
    const SpArchResult r = sim.multiply(adj, adj);

    // Host-side: mask A^2 with A and reduce. (A^2)[i][j] counts the
    // 2-paths i->k->j; masking with the edge (i,j) closes triangles.
    double wedge_sum = 0.0;
    for (Index i = 0; i < adj.rows(); ++i) {
        auto a_cols = adj.rowCols(i);
        auto sq_cols = r.result.rowCols(i);
        auto sq_vals = r.result.rowVals(i);
        std::size_t p = 0, q = 0;
        while (p < a_cols.size() && q < sq_cols.size()) {
            if (a_cols[p] < sq_cols[q]) {
                ++p;
            } else if (a_cols[p] > sq_cols[q]) {
                ++q;
            } else {
                wedge_sum += sq_vals[q];
                ++p;
                ++q;
            }
        }
    }
    const auto triangles =
        static_cast<std::uint64_t>(wedge_sum / 6.0 + 0.5);

    std::printf("Triangles              %llu\n",
                static_cast<unsigned long long>(triangles));
    std::printf("SpGEMM time on SpArch  %.3f us (%llu cycles)\n",
                r.seconds * 1e6,
                static_cast<unsigned long long>(r.cycles));
    std::printf("Achieved               %.2f GFLOP/s\n", r.gflops);
    std::printf("DRAM traffic           %.3f MB\n",
                static_cast<double>(r.bytesTotal) / 1e6);
    std::printf("Prefetch hit rate      %.1f %%\n",
                100.0 * r.prefetchHitRate);
    return 0;
}
