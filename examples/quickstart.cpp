/**
 * @file
 * Quickstart: simulate C = A^2 on SpArch for a small random matrix and
 * print the headline metrics (cycles, GFLOP/s, DRAM traffic split,
 * prefetcher hit rate), cross-checking the result against the
 * reference Gustavson SpGEMM.
 *
 * Usage: quickstart [rows] [nnz] [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "core/sparch_simulator.hh"
#include "matrix/generators.hh"
#include "matrix/reference_spgemm.hh"

int
main(int argc, char **argv)
{
    using namespace sparch;

    const Index rows = argc > 1 ? static_cast<Index>(
                                      std::strtoul(argv[1], nullptr, 10))
                                : 2000;
    const std::uint64_t nnz =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : rows * 8;
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

    std::printf("Generating %u x %u uniform random matrix, %llu nnz\n",
                rows, rows, static_cast<unsigned long long>(nnz));
    const CsrMatrix a = generateUniform(rows, rows, nnz, seed);

    SpArchSimulator sim; // Table I configuration
    const SpArchResult r = sim.multiply(a, a);

    const CsrMatrix golden = spgemmDenseAccumulator(a, a);
    std::printf("Result check vs reference Gustavson: %s\n",
                r.result.almostEqual(golden) ? "PASS" : "FAIL");

    std::printf("\n-- SpArch metrics --\n");
    std::printf("cycles                 %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("time                   %.3f us\n", r.seconds * 1e6);
    std::printf("achieved               %.2f GFLOP/s\n", r.gflops);
    std::printf("multiplies             %llu\n",
                static_cast<unsigned long long>(r.multiplies));
    std::printf("output nnz             %zu\n", r.result.nnz());
    std::printf("condensed columns      %llu\n",
                static_cast<unsigned long long>(r.partialMatrices));
    std::printf("merge rounds           %llu\n",
                static_cast<unsigned long long>(r.mergeRounds));
    std::printf("prefetch hit rate      %.1f %%\n",
                100.0 * r.prefetchHitRate);
    std::printf("bandwidth utilization  %.1f %%\n",
                100.0 * r.bandwidthUtilization);
    std::printf("\n-- DRAM traffic (MB) --\n");
    auto mb = [](Bytes b) { return static_cast<double>(b) / 1e6; };
    std::printf("mat A                  %.3f\n", mb(r.bytesMatA));
    std::printf("mat B                  %.3f\n", mb(r.bytesMatB));
    std::printf("partial read           %.3f\n",
                mb(r.bytesPartialRead));
    std::printf("partial write          %.3f\n",
                mb(r.bytesPartialWrite));
    std::printf("final write            %.3f\n", mb(r.bytesFinalWrite));
    std::printf("total                  %.3f\n", mb(r.bytesTotal));
    return r.result.almostEqual(golden) ? 0 : 1;
}
