/**
 * @file
 * Compressed (pruned) neural-network layers on SpArch.
 *
 * The paper's first motivating application is compressed DNN inference
 * (Deep Compression prunes ~90% of weights). With activations kept
 * sparse too, each layer is an SpGEMM: Y = W x X with sparse W (pruned
 * weights) and sparse X (activation batch). This example runs a
 * three-layer MLP forward pass through the simulated accelerator and
 * reports per-layer performance.
 *
 * Usage: compressed_dnn [batch] [hidden] [density_percent]
 */

#include <cstdio>
#include <cstdlib>

#include "core/sparch_simulator.hh"
#include "matrix/generators.hh"

namespace
{

/** Sparse ReLU: drop negative values (keeps the matrix sparse). */
sparch::CsrMatrix
sparseRelu(const sparch::CsrMatrix &m)
{
    using namespace sparch;
    CooMatrix kept(m.rows(), m.cols());
    for (Index r = 0; r < m.rows(); ++r) {
        auto cols = m.rowCols(r);
        auto vals = m.rowVals(r);
        for (std::size_t i = 0; i < cols.size(); ++i) {
            if (vals[i] > 0.0)
                kept.add(r, cols[i], vals[i]);
        }
    }
    kept.canonicalize();
    return CsrMatrix::fromCoo(kept);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sparch;

    const Index batch =
        argc > 1 ? static_cast<Index>(std::strtoul(argv[1], nullptr,
                                                   10))
                 : 256;
    const Index hidden =
        argc > 2 ? static_cast<Index>(std::strtoul(argv[2], nullptr,
                                                   10))
                 : 1024;
    const double density =
        (argc > 3 ? std::strtod(argv[3], nullptr) : 10.0) / 100.0;

    // Pruned weight matrices (90% sparsity by default) and a sparse
    // activation batch.
    const auto wnnz = static_cast<std::uint64_t>(
        density * hidden * hidden);
    const CsrMatrix w1 = generateUniform(hidden, hidden, wnnz, 1);
    const CsrMatrix w2 = generateUniform(hidden, hidden, wnnz, 2);
    const CsrMatrix w3 = generateUniform(hidden, hidden, wnnz, 3);
    CsrMatrix x = generateUniform(
        hidden, batch,
        static_cast<std::uint64_t>(density * hidden * batch), 4);

    std::printf("Pruned MLP: 3 layers of %u x %u at %.0f%% density, "
                "batch %u\n",
                hidden, hidden, density * 100.0, batch);

    SpArchSimulator sim;
    double total_us = 0.0;
    double total_mb = 0.0;
    int layer = 0;
    for (const CsrMatrix *w : {&w1, &w2, &w3}) {
        const SpArchResult r = sim.multiply(*w, x);
        ++layer;
        std::printf(
            "layer %d: %8.1f us  %6.2f GFLOP/s  %7.3f MB DRAM  "
            "activations %zu -> %zu nnz\n",
            layer, r.seconds * 1e6, r.gflops,
            static_cast<double>(r.bytesTotal) / 1e6, x.nnz(),
            r.result.nnz());
        total_us += r.seconds * 1e6;
        total_mb += static_cast<double>(r.bytesTotal) / 1e6;
        x = sparseRelu(r.result);
    }
    std::printf("forward pass: %.1f us, %.3f MB DRAM, output nnz %zu\n",
                total_us, total_mb, x.nnz());
    return 0;
}
