#!/usr/bin/env bash
# clang-tidy gate over src/ (the list CI holds warning-clean).
#
# Usage: scripts/lint.sh [--require-tools] [build-dir] [file...]
#
#   --require-tools  fail (exit 2) when clang-tidy is missing instead
#                    of skipping. CI passes this so a broken tool
#                    install can never silently pass the gate.
#   build-dir  a configured build tree with compile_commands.json
#              (default: build). Configure one with
#              cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
#   file...    restrict linting to these sources (default: every
#              tracked .cc under src/).
#
# Exits 0 when clean, 1 on findings (WarningsAsErrors: '*' in
# .clang-tidy makes every finding an error), and 0 with a notice when
# clang-tidy is not installed — local toolchains without clang are
# fine; CI installs it and enforces the gate with --require-tools.
set -euo pipefail

cd "$(dirname "$0")/.."

REQUIRE_TOOLS=0
if [ "${1:-}" = "--require-tools" ]; then
    REQUIRE_TOOLS=1
    shift
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    if [ "$REQUIRE_TOOLS" -eq 1 ]; then
        echo "lint.sh: $TIDY not installed but --require-tools was given" >&2
        exit 2
    fi
    echo "lint.sh: $TIDY not installed; skipping (CI enforces this gate)"
    exit 0
fi

BUILD_DIR="${1:-build}"
[ $# -gt 0 ] && shift

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint.sh: $BUILD_DIR/compile_commands.json not found." >&2
    echo "  cmake -B $BUILD_DIR -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

if [ $# -gt 0 ]; then
    files=("$@")
else
    mapfile -t files < <(git ls-files 'src/*.cc')
fi

echo "lint.sh: $TIDY over ${#files[@]} file(s) with $BUILD_DIR/compile_commands.json"
status=0
for file in "${files[@]}"; do
    # -p gives clang-tidy the real compile flags; --quiet keeps the
    # output to findings only.
    "$TIDY" --quiet -p "$BUILD_DIR" "$file" || status=1
done

if [ "$status" -ne 0 ]; then
    echo "lint.sh: clang-tidy findings above must be fixed (see .clang-tidy)" >&2
fi
exit "$status"
