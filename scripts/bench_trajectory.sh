#!/usr/bin/env bash
# Append one bench_hotpath measurement to the checked-in benchmark
# trajectory (BENCH_simulator.json at the repository root).
#
# The trajectory records how long one serial simulation of the fig12
# suite takes, PR over PR, on whatever machine ran it: every entry
# carries a machine fingerprint and a `normalized_cost` (median wall
# clock divided by a fixed-work calibration loop timed in the same
# process), so entries from different machines compare ratio-to-ratio.
# CI's perf-smoke job gates on the latest entry at its scale.
#
# usage: scripts/bench_trajectory.sh <label> [build-dir]
#   label      trajectory entry label, e.g. "PR7-post"
#   build-dir  CMake build dir containing bench/bench_hotpath
#              (default: build)
# env: SPARCH_BENCH_NNZ (default 60000), SPARCH_BENCH_REPS (default 3)

set -euo pipefail

label="${1:?usage: bench_trajectory.sh <label> [build-dir]}"
build="${2:-build}"
root="$(cd "$(dirname "$0")/.." && pwd)"
traj="$root/BENCH_simulator.json"
bench="$root/$build/bench/bench_hotpath"

if [ ! -x "$bench" ]; then
    echo "bench_trajectory: $bench is not built" \
         "(cmake --build $build --target bench_hotpath)" >&2
    exit 1
fi

entry="$(mktemp)"
trap 'rm -f "$entry"' EXIT

SPARCH_BENCH_NNZ="${SPARCH_BENCH_NNZ:-60000}" \
SPARCH_BENCH_REPS="${SPARCH_BENCH_REPS:-3}" \
SPARCH_BENCH_JSON="$entry" "$bench"

rev="$(git -C "$root" describe --always --dirty 2>/dev/null || echo unknown)"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

python3 - "$traj" "$entry" "$label" "$rev" "$stamp" <<'EOF'
import json
import sys

traj_path, entry_path, label, rev, stamp = sys.argv[1:6]
with open(entry_path) as f:
    entry = json.load(f)
entry = {"label": label, "git": rev, "date": stamp, **entry}

try:
    with open(traj_path) as f:
        traj = json.load(f)
except FileNotFoundError:
    traj = {
        "schema": "sparch-bench-trajectory-v1",
        "benchmark": "bench_hotpath",
        "entries": [],
    }

traj["entries"].append(entry)
with open(traj_path, "w") as f:
    json.dump(traj, f, indent=2)
    f.write("\n")
print(f"bench_trajectory: appended '{label}' "
      f"(normalized_cost {entry['normalized_cost']:.2f}) to {traj_path}")
EOF
