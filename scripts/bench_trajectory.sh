#!/usr/bin/env bash
# Append one benchmark measurement to the checked-in benchmark
# trajectory (BENCH_simulator.json at the repository root).
#
# The trajectory records perf PR over PR, on whatever machine ran it:
# every entry carries a machine fingerprint and a machine-normalized
# metric (wall clock or throughput divided by / multiplied by a
# fixed-work calibration loop timed in the same process), so entries
# from different machines compare ratio-to-ratio. CI's perf-smoke job
# gates on the latest entry of each schema at its scale.
#
# Three benches feed the trajectory, selected by the third argument:
#   hotpath    bench_hotpath   (schema sparch-bench-hotpath-v1,
#              gated on normalized_cost)
#   surrogate  bench_surrogate (schema sparch-bench-surrogate-v1,
#              gated on points_per_second >= 1e6)
#   io         bench_io        (schema sparch-bench-io-v1, gated on
#              convert_mb_per_calibration)
#
# Entries record the exact commit they measured: the script refuses to
# run on a dirty tree (an entry stamped with a HEAD that does not
# contain the measured code is untraceable) unless
# SPARCH_BENCH_ALLOW_DIRTY=1 is set, in which case the entry is
# annotated with "dirty": true.
#
# usage: scripts/bench_trajectory.sh <label> [build-dir] [bench]
#   label      trajectory entry label, e.g. "PR7-post"
#   build-dir  CMake build dir containing the bench binaries
#              (default: build)
#   bench      hotpath (default) | surrogate | io
# env: SPARCH_BENCH_NNZ (default 60000), SPARCH_BENCH_REPS (default 3),
#      SPARCH_BENCH_SURROGATE_POINTS (default 100000),
#      SPARCH_BENCH_IO_NNZ (default 2000000),
#      SPARCH_BENCH_ALLOW_DIRTY=1 to append from a dirty tree

set -euo pipefail

label="${1:?usage: bench_trajectory.sh <label> [build-dir] [bench]}"
build="${2:-build}"
which_bench="${3:-hotpath}"
root="$(cd "$(dirname "$0")/.." && pwd)"
traj="$root/BENCH_simulator.json"

case "$which_bench" in
hotpath) bench="$root/$build/bench/bench_hotpath" ;;
surrogate) bench="$root/$build/bench/bench_surrogate" ;;
io) bench="$root/$build/bench/bench_io" ;;
*)
    echo "bench_trajectory: unknown bench '$which_bench'" \
         "(want hotpath, surrogate or io)" >&2
    exit 1
    ;;
esac

if [ ! -x "$bench" ]; then
    echo "bench_trajectory: $bench is not built" \
         "(cmake --build $build --target bench_$which_bench)" >&2
    exit 1
fi

# The real commit, not `git describe`'s nearest-tag guess, and an
# explicit dirty check: a "-dirty" suffix in the git field means the
# measured tree is unrecoverable from the hash it names.
rev="$(git -C "$root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
dirty=0
if [ -n "$(git -C "$root" status --porcelain 2>/dev/null)" ]; then
    dirty=1
    if [ "${SPARCH_BENCH_ALLOW_DIRTY:-0}" != "1" ]; then
        echo "bench_trajectory: working tree is dirty; commit first" \
             "so the entry's git field names the measured code, or" \
             "set SPARCH_BENCH_ALLOW_DIRTY=1 to append an entry" \
             "annotated \"dirty\": true" >&2
        exit 1
    fi
    echo "bench_trajectory: WARNING: appending from a dirty tree;" \
         "entry will be annotated \"dirty\": true" >&2
fi

entry="$(mktemp)"
trap 'rm -f "$entry"' EXIT

SPARCH_BENCH_NNZ="${SPARCH_BENCH_NNZ:-60000}" \
SPARCH_BENCH_REPS="${SPARCH_BENCH_REPS:-3}" \
SPARCH_BENCH_IO_NNZ="${SPARCH_BENCH_IO_NNZ:-2000000}" \
SPARCH_BENCH_JSON="$entry" "$bench"

stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

python3 - "$traj" "$entry" "$label" "$rev" "$stamp" "$dirty" <<'EOF'
import json
import sys

traj_path, entry_path, label, rev, stamp, dirty = sys.argv[1:7]
with open(entry_path) as f:
    entry = json.load(f)
head = {"label": label, "git": rev, "date": stamp}
if dirty == "1":
    head["dirty"] = True
entry = {**head, **entry}

try:
    with open(traj_path) as f:
        traj = json.load(f)
except FileNotFoundError:
    traj = {
        "schema": "sparch-bench-trajectory-v1",
        "benchmark": "bench_hotpath",
        "entries": [],
    }

traj["entries"].append(entry)
with open(traj_path, "w") as f:
    json.dump(traj, f, indent=2)
    f.write("\n")
if "normalized_cost" in entry:
    metric = f"normalized_cost {entry['normalized_cost']:.2f}"
elif "convert_mb_per_calibration" in entry:
    metric = (f"convert_mb_per_calibration "
              f"{entry['convert_mb_per_calibration']:.2f}")
else:
    metric = f"{entry['points_per_second'] / 1e6:.2f} Mpoints/s"
print(f"bench_trajectory: appended '{label}' ({metric}) to {traj_path}")
EOF
