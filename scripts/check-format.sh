#!/usr/bin/env bash
# clang-format gate: every tracked C++ file must match .clang-format.
#
# Usage: scripts/check-format.sh [--require-tools] [file...]
#
#   --require-tools  fail (exit 2) when clang-format is missing
#                    instead of skipping, so CI can never silently
#                    pass the gate on a broken tool install.
#
# With no arguments, checks every tracked .cc/.hh in the repo except
# tests/audit/fixtures/ (those files seed deliberate style
# violations for the audit tool). Exits 0 when everything is
# formatted, 1 with a unified diff per offending file otherwise, and
# 0 with a notice when clang-format is not installed (CI installs it
# and enforces the gate with --require-tools).
set -euo pipefail

cd "$(dirname "$0")/.."

REQUIRE_TOOLS=0
if [ "${1:-}" = "--require-tools" ]; then
    REQUIRE_TOOLS=1
    shift
fi

FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FORMAT" >/dev/null 2>&1; then
    if [ "$REQUIRE_TOOLS" -eq 1 ]; then
        echo "check-format.sh: $FORMAT not installed but --require-tools was given" >&2
        exit 2
    fi
    echo "check-format.sh: $FORMAT not installed; skipping (CI enforces this gate)"
    exit 0
fi

if [ $# -gt 0 ]; then
    files=("$@")
else
    mapfile -t files < <(git ls-files '*.cc' '*.hh' ':!tests/audit/fixtures')
fi

status=0
for file in "${files[@]}"; do
    if ! diff -u --label "$file (tracked)" --label "$file (formatted)" \
            "$file" <("$FORMAT" --style=file "$file") >/dev/null; then
        echo "check-format.sh: $file is not clang-format clean:"
        diff -u --label "$file (tracked)" --label "$file (formatted)" \
            "$file" <("$FORMAT" --style=file "$file") || true
        status=1
    fi
done

if [ "$status" -ne 0 ]; then
    echo "check-format.sh: run '$FORMAT -i <file>' on the files above" >&2
fi
exit "$status"
